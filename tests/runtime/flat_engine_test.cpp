// Differential proof that core::FlatEngine — the structure-of-arrays
// substrate — is observationally identical to the object-model sim::Engine,
// which stays pinned as the reference oracle: same StepRecord trace, byte
// for byte, on the paper's algorithm across topology families, all four
// daemons, and fault schedules — including mid-run malicious crashes,
// global corruption, crash-restart rejoin, and workload churn, announced
// through reset_ages()/invalidate_all() per the external-mutation contract.
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/diners_system.hpp"
#include "core/flat_engine.hpp"
#include "fault/injector.hpp"
#include "graph/generators.hpp"
#include "runtime/daemon.hpp"
#include "runtime/engine.hpp"
#include "util/rng.hpp"

namespace diners::core {
namespace {

// --- trace capture --------------------------------------------------------

std::string format(const sim::StepRecord& r) {
  std::ostringstream out;
  out << r.step << ':' << r.process << ':' << r.action << ':' << r.action_name;
  return out.str();
}

struct FaultSchedule {
  std::vector<fault::CrashEvent> crashes;   ///< applied via reset_ages()
  std::uint64_t corrupt_at = 0;             ///< 0 = never; via reset_ages()
  std::uint64_t toggle_every = 0;           ///< 0 = never; via invalidate_all()
  std::uint64_t restart_at = 0;             ///< 0 = never; revives victim 0
};

/// Runs the paper's algorithm for `steps` scheduler steps on the given
/// engine kind and returns the serialized trace. Everything (graph, daemon
/// seed, rng streams, fault schedule) is reconstructed identically per call
/// so both engines see the same inputs.
std::vector<std::string> run_diners(const graph::Graph& g,
                                    const std::string& daemon,
                                    const FaultSchedule& faults,
                                    std::uint64_t steps, sim::EngineKind kind,
                                    unsigned rebuild_jobs = 1) {
  DinersSystem system(g);
  std::unique_ptr<sim::EngineBase> engine;
  if (kind == sim::EngineKind::kFlat) {
    engine = std::make_unique<FlatEngine>(system, daemon, /*daemon_seed=*/7,
                                          /*fairness_bound=*/64, rebuild_jobs);
  } else {
    engine = std::make_unique<sim::Engine>(
        system, sim::make_daemon(daemon, /*seed=*/7), /*fairness_bound=*/64);
  }
  std::vector<std::string> trace;
  engine->add_observer(
      [&](const sim::StepRecord& r) { trace.push_back(format(r)); });

  fault::CrashPlan plan(faults.crashes);
  util::Xoshiro256 crash_rng(21);
  util::Xoshiro256 corrupt_rng(22);
  bool corrupted = false;
  bool restarted = false;
  for (std::uint64_t s = 0; s < steps; ++s) {
    if (plan.apply_due(system, engine->steps(), crash_rng) > 0) {
      engine->reset_ages();
    }
    if (faults.corrupt_at != 0 && !corrupted &&
        engine->steps() >= faults.corrupt_at) {
      fault::corrupt_global_state(system, corrupt_rng);
      engine->reset_ages();
      corrupted = true;
    }
    if (faults.restart_at != 0 && !restarted &&
        engine->steps() >= faults.restart_at && !faults.crashes.empty()) {
      system.restart(faults.crashes.front().process);
      engine->reset_ages();
      restarted = true;
    }
    if (faults.toggle_every != 0 && engine->steps() > 0 &&
        engine->steps() % faults.toggle_every == 0) {
      const auto p = static_cast<DinersSystem::ProcessId>(
          engine->steps() / faults.toggle_every % g.num_nodes());
      system.set_needs(p, !system.needs(p));
      engine->invalidate_all();
    }
    if (!engine->step()) break;
  }
  return trace;
}

void expect_identical_traces(const graph::Graph& g, const std::string& daemon,
                             const FaultSchedule& faults,
                             std::uint64_t steps) {
  const auto object =
      run_diners(g, daemon, faults, steps, sim::EngineKind::kObject);
  const auto flat = run_diners(g, daemon, faults, steps, sim::EngineKind::kFlat);
  ASSERT_EQ(object.size(), flat.size()) << "daemon: " << daemon;
  for (std::size_t i = 0; i < flat.size(); ++i) {
    ASSERT_EQ(object[i], flat[i])
        << "daemon: " << daemon << ", first divergence at trace index " << i;
  }
}

const char* const kDaemons[] = {"round-robin", "random", "adversarial-age",
                                "biased"};

// --- differential suite: three topology families × four daemons ----------

TEST(FlatEngineDifferential, RingAllDaemonsFaultFree) {
  const auto g = graph::make_ring(24);
  for (const auto* daemon : kDaemons) {
    expect_identical_traces(g, daemon, {}, 3000);
  }
}

TEST(FlatEngineDifferential, GridAllDaemonsFaultFree) {
  const auto g = graph::make_grid(6, 4);
  for (const auto* daemon : kDaemons) {
    expect_identical_traces(g, daemon, {}, 3000);
  }
}

TEST(FlatEngineDifferential, GnpAllDaemonsFaultFree) {
  const auto g = graph::make_connected_gnp(20, 0.15, /*seed=*/5);
  for (const auto* daemon : kDaemons) {
    expect_identical_traces(g, daemon, {}, 3000);
  }
}

TEST(FlatEngineDifferential, RingWithMaliciousCrashes) {
  const auto g = graph::make_ring(24);
  FaultSchedule faults;
  faults.crashes = {fault::CrashEvent{200, 3, 16},
                    fault::CrashEvent{500, 11, 0}};
  for (const auto* daemon : kDaemons) {
    expect_identical_traces(g, daemon, faults, 3000);
  }
}

TEST(FlatEngineDifferential, GridWithMaliciousCrashes) {
  const auto g = graph::make_grid(6, 4);
  FaultSchedule faults;
  faults.crashes = {fault::CrashEvent{150, 9, 32},
                    fault::CrashEvent{400, 20, 8}};
  for (const auto* daemon : kDaemons) {
    expect_identical_traces(g, daemon, faults, 3000);
  }
}

TEST(FlatEngineDifferential, GnpWithGlobalCorruptionAndCrash) {
  const auto g = graph::make_connected_gnp(20, 0.15, /*seed=*/5);
  FaultSchedule faults;
  faults.crashes = {fault::CrashEvent{700, 4, 12}};
  faults.corrupt_at = 300;
  for (const auto* daemon : kDaemons) {
    expect_identical_traces(g, daemon, faults, 3000);
  }
}

TEST(FlatEngineDifferential, RingWithCrashRestartRejoin) {
  const auto g = graph::make_ring(24);
  FaultSchedule faults;
  faults.crashes = {fault::CrashEvent{200, 5, 24}};
  faults.restart_at = 900;
  for (const auto* daemon : kDaemons) {
    expect_identical_traces(g, daemon, faults, 3000);
  }
}

TEST(FlatEngineDifferential, RingWithWorkloadChurn) {
  const auto g = graph::make_ring(24);
  FaultSchedule faults;
  faults.toggle_every = 97;
  for (const auto* daemon : kDaemons) {
    expect_identical_traces(g, daemon, faults, 3000);
  }
}

TEST(FlatEngineDifferential, EverythingAtOnce) {
  const auto g = graph::make_connected_gnp(20, 0.2, /*seed=*/13);
  FaultSchedule faults;
  faults.crashes = {fault::CrashEvent{250, 2, 24},
                    fault::CrashEvent{900, 15, 0}};
  faults.corrupt_at = 600;
  faults.restart_at = 1500;
  faults.toggle_every = 113;
  for (const auto* daemon : kDaemons) {
    expect_identical_traces(g, daemon, faults, 4000);
  }
}

// --- sharded rebuild is trace-invariant ------------------------------------

TEST(FlatEngineDifferential, RebuildJobsDoNotChangeTraces) {
  // Corruption plus crashes force repeated full rebuilds; the sharded
  // parallel rebuild must produce the same enabled-set — and therefore the
  // same trace — at every worker count.
  const auto g = graph::make_connected_gnp(20, 0.2, /*seed=*/13);
  FaultSchedule faults;
  faults.crashes = {fault::CrashEvent{250, 2, 24}};
  faults.corrupt_at = 600;
  for (const auto* daemon : kDaemons) {
    const auto serial =
        run_diners(g, daemon, faults, 3000, sim::EngineKind::kFlat, 1);
    for (const unsigned jobs : {2u, 4u, 8u}) {
      const auto sharded =
          run_diners(g, daemon, faults, 3000, sim::EngineKind::kFlat, jobs);
      ASSERT_EQ(serial, sharded)
          << "daemon: " << daemon << ", rebuild jobs: " << jobs;
    }
  }
}

// --- enabled_count consistency -------------------------------------------

TEST(FlatEngineDifferential, EnabledCountMatchesObjectEngineThroughout) {
  const auto g = graph::make_ring(16);
  DinersSystem a(g);
  DinersSystem b(g);
  sim::Engine object(a, sim::make_daemon("round-robin", 1), 64);
  FlatEngine flat(b, "round-robin", 1, 64);
  for (int s = 0; s < 500; ++s) {
    ASSERT_EQ(object.enabled_count(), flat.enabled_count()) << "at step " << s;
    const auto ra = object.step();
    const auto rb = flat.step();
    ASSERT_EQ(ra.has_value(), rb.has_value());
    if (!ra) break;
  }
}

// --- engine contract corners ----------------------------------------------

TEST(FlatEngine, TerminationIsNeverCachedAcrossMutation) {
  // Drive a ring to termination (appetite off), then revive appetite with
  // the announced invalidate; the engine must pick the work back up. Cycle
  // breaking is disabled because its exit/fixdepth depth churn never
  // quiesces on a ring (an exit yields edges, handing neighbours fresh
  // descendants that re-enable their fixdepth) — with it off and appetite
  // off, no guard is enabled and the run genuinely terminates.
  DinersConfig cfg;
  cfg.enable_cycle_breaking = false;
  DinersSystem system(graph::make_ring(4), cfg);
  FlatEngine engine(system, "round-robin", 1, 64);
  for (DinersSystem::ProcessId p = 0; p < 4; ++p) system.set_needs(p, false);
  engine.invalidate_all();
  const auto result = engine.run(10000);
  EXPECT_EQ(result.outcome, sim::RunOutcome::kTerminated);
  EXPECT_EQ(engine.enabled_count(), 0u);
  EXPECT_FALSE(engine.step().has_value());
  system.set_needs(0, true);
  engine.invalidate_all();
  EXPECT_TRUE(engine.step().has_value());
}

TEST(FlatEngine, RejectsBadConstructorArguments) {
  DinersSystem system(graph::make_ring(4));
  EXPECT_THROW(FlatEngine(system, "no-such-daemon", 1, 64),
               std::invalid_argument);
  EXPECT_THROW(FlatEngine(system, "round-robin", 1, /*fairness_bound=*/0),
               std::invalid_argument);
  EXPECT_THROW(FlatEngine(system, "round-robin", 1, 64, /*rebuild_jobs=*/0),
               std::invalid_argument);
}

// --- guard_mask agrees with enabled() on arbitrary states ------------------

TEST(GuardMask, MatchesEnabledUnderRandomCorruption) {
  // guard_mask() is the flat engine's single-pass guard evaluator; fuzz it
  // against the per-action enabled() oracle across corrupted states,
  // including dead processes (the mask itself ignores liveness, as
  // documented — compare raw guards).
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    DinersSystem system(graph::make_connected_gnp(24, 0.2, seed));
    util::Xoshiro256 rng(util::derive_seed(seed, 99));
    for (int round = 0; round < 50; ++round) {
      fault::corrupt_global_state(system, rng);
      for (DinersSystem::ProcessId p = 0; p < 24; ++p) {
        const std::uint32_t mask = system.guard_mask(p);
        for (sim::ActionIndex a = 0; a < DinersSystem::kNumActions; ++a) {
          ASSERT_EQ(((mask >> a) & 1u) != 0, system.enabled(p, a))
              << "seed " << seed << " round " << round << " process " << p
              << " action " << static_cast<int>(a);
        }
      }
    }
  }
}

}  // namespace
}  // namespace diners::core
