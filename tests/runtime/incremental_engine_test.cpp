// Differential proof that the incremental enabled-set engine is
// observationally identical to the classic full-scan engine: same
// StepRecord trace, byte for byte, on the paper's algorithm across
// topology families, daemons, and fault schedules — including mid-run
// malicious crashes and global corruption, both announced through
// reset_ages()/invalidate_all() per the external-mutation contract.
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/diners_system.hpp"
#include "fault/injector.hpp"
#include "graph/generators.hpp"
#include "runtime/daemon.hpp"
#include "runtime/engine.hpp"
#include "test_programs.hpp"
#include "util/rng.hpp"

namespace diners::sim {
namespace {

using core::DinersConfig;
using core::DinersSystem;

// --- trace capture --------------------------------------------------------

/// One executed step, serialized for byte-exact comparison.
std::string format(const StepRecord& r) {
  std::ostringstream out;
  out << r.step << ':' << r.process << ':' << r.action << ':' << r.action_name;
  return out.str();
}

struct FaultSchedule {
  std::vector<fault::CrashEvent> crashes;   ///< applied via reset_ages()
  std::uint64_t corrupt_at = 0;             ///< 0 = never; via reset_ages()
  std::uint64_t toggle_every = 0;           ///< 0 = never; via invalidate_all()
};

/// Runs the paper's algorithm for `steps` scheduler steps under `mode` and
/// returns the serialized trace. Everything (graph, daemon, rng streams,
/// fault schedule) is reconstructed identically per call so the two modes
/// see the same inputs.
std::vector<std::string> run_diners(const graph::Graph& g,
                                    const std::string& daemon,
                                    const FaultSchedule& faults,
                                    std::uint64_t steps, ScanMode mode) {
  DinersSystem system(g);
  Engine engine(system, make_daemon(daemon, /*seed=*/7), /*fairness_bound=*/64,
                mode);
  std::vector<std::string> trace;
  engine.add_observer([&](const StepRecord& r) { trace.push_back(format(r)); });

  fault::CrashPlan plan(faults.crashes);
  util::Xoshiro256 crash_rng(21);
  util::Xoshiro256 corrupt_rng(22);
  bool corrupted = false;
  for (std::uint64_t s = 0; s < steps; ++s) {
    if (plan.apply_due(system, engine.steps(), crash_rng) > 0) {
      engine.reset_ages();
    }
    if (faults.corrupt_at != 0 && !corrupted &&
        engine.steps() >= faults.corrupt_at) {
      fault::corrupt_global_state(system, corrupt_rng);
      engine.reset_ages();
      corrupted = true;
    }
    if (faults.toggle_every != 0 && engine.steps() > 0 &&
        engine.steps() % faults.toggle_every == 0) {
      // Deterministic hunger churn: flip one process's appetite.
      const auto p = static_cast<DinersSystem::ProcessId>(
          engine.steps() / faults.toggle_every % g.num_nodes());
      system.set_needs(p, !system.needs(p));
      engine.invalidate_all();
    }
    if (!engine.step()) break;
  }
  return trace;
}

void expect_identical_traces(const graph::Graph& g, const std::string& daemon,
                             const FaultSchedule& faults, std::uint64_t steps) {
  const auto incremental =
      run_diners(g, daemon, faults, steps, ScanMode::kIncremental);
  const auto full = run_diners(g, daemon, faults, steps, ScanMode::kFullScan);
  ASSERT_EQ(incremental.size(), full.size()) << "daemon: " << daemon;
  for (std::size_t i = 0; i < full.size(); ++i) {
    ASSERT_EQ(incremental[i], full[i])
        << "daemon: " << daemon << ", first divergence at trace index " << i;
  }
}

const char* const kDaemons[] = {"round-robin", "random", "adversarial-age",
                                "biased"};

// --- differential suite: three topology families × four daemons ----------

TEST(IncrementalDifferential, RingAllDaemonsFaultFree) {
  const auto g = graph::make_ring(24);
  for (const auto* daemon : kDaemons) {
    expect_identical_traces(g, daemon, {}, 3000);
  }
}

TEST(IncrementalDifferential, GridAllDaemonsFaultFree) {
  const auto g = graph::make_grid(6, 4);
  for (const auto* daemon : kDaemons) {
    expect_identical_traces(g, daemon, {}, 3000);
  }
}

TEST(IncrementalDifferential, GnpAllDaemonsFaultFree) {
  const auto g = graph::make_connected_gnp(20, 0.15, /*seed=*/5);
  for (const auto* daemon : kDaemons) {
    expect_identical_traces(g, daemon, {}, 3000);
  }
}

TEST(IncrementalDifferential, RingWithMaliciousCrashes) {
  const auto g = graph::make_ring(24);
  FaultSchedule faults;
  faults.crashes = {fault::CrashEvent{200, 3, 16},
                    fault::CrashEvent{500, 11, 0}};
  for (const auto* daemon : kDaemons) {
    expect_identical_traces(g, daemon, faults, 3000);
  }
}

TEST(IncrementalDifferential, GridWithMaliciousCrashes) {
  const auto g = graph::make_grid(6, 4);
  FaultSchedule faults;
  faults.crashes = {fault::CrashEvent{150, 9, 32},
                    fault::CrashEvent{400, 20, 8}};
  for (const auto* daemon : kDaemons) {
    expect_identical_traces(g, daemon, faults, 3000);
  }
}

TEST(IncrementalDifferential, GnpWithGlobalCorruptionAndCrash) {
  const auto g = graph::make_connected_gnp(20, 0.15, /*seed=*/5);
  FaultSchedule faults;
  faults.crashes = {fault::CrashEvent{700, 4, 12}};
  faults.corrupt_at = 300;
  for (const auto* daemon : kDaemons) {
    expect_identical_traces(g, daemon, faults, 3000);
  }
}

TEST(IncrementalDifferential, RingWithWorkloadChurn) {
  // External needs() mutation between steps, announced via invalidate_all().
  const auto g = graph::make_ring(24);
  FaultSchedule faults;
  faults.toggle_every = 97;
  for (const auto* daemon : kDaemons) {
    expect_identical_traces(g, daemon, faults, 3000);
  }
}

TEST(IncrementalDifferential, EverythingAtOnce) {
  const auto g = graph::make_connected_gnp(20, 0.2, /*seed=*/13);
  FaultSchedule faults;
  faults.crashes = {fault::CrashEvent{250, 2, 24},
                    fault::CrashEvent{900, 15, 0}};
  faults.corrupt_at = 600;
  faults.toggle_every = 113;
  for (const auto* daemon : kDaemons) {
    expect_identical_traces(g, daemon, faults, 4000);
  }
}

// --- enabled_count consistency -------------------------------------------

TEST(IncrementalDifferential, EnabledCountMatchesFullScanThroughout) {
  const auto g = graph::make_ring(16);
  DinersSystem a(g);
  DinersSystem b(g);
  Engine inc(a, make_daemon("round-robin", 1), 64, ScanMode::kIncremental);
  Engine full(b, make_daemon("round-robin", 1), 64, ScanMode::kFullScan);
  for (int s = 0; s < 500; ++s) {
    ASSERT_EQ(inc.enabled_count(), full.enabled_count()) << "at step " << s;
    const auto ra = inc.step();
    const auto rb = full.step();
    ASSERT_EQ(ra.has_value(), rb.has_value());
    if (!ra) break;
  }
}

// --- daemon candidate-ordering regression --------------------------------

/// Passes through to scan order but asserts that the candidate list the
/// engine hands to the daemon is strictly (process, action)-ascending — the
/// contract RoundRobinDaemon and BiasedDaemon rely on.
class OrderAssertingDaemon final : public Daemon {
 public:
  std::size_t choose(std::span<const EnabledAction> candidates) override {
    for (std::size_t i = 1; i < candidates.size(); ++i) {
      const auto& prev = candidates[i - 1];
      const auto& cur = candidates[i];
      const bool ascending =
          prev.process < cur.process ||
          (prev.process == cur.process && prev.action < cur.action);
      EXPECT_TRUE(ascending)
          << "candidates out of (process, action) order at index " << i
          << ": (" << prev.process << "," << prev.action << ") then ("
          << cur.process << "," << cur.action << ")";
    }
    ++calls;
    return calls % candidates.size();
  }
  std::string name() const override { return "order-asserting"; }

  std::size_t calls = 0;
};

void check_candidate_order(ScanMode mode) {
  DinersSystem system(graph::make_connected_gnp(18, 0.2, /*seed=*/3));
  auto daemon = std::make_unique<OrderAssertingDaemon>();
  auto* raw = daemon.get();
  Engine engine(system, std::move(daemon), 64, mode);
  fault::CrashPlan plan({fault::CrashEvent{100, 5, 16}});
  util::Xoshiro256 rng(4);
  for (int s = 0; s < 800; ++s) {
    if (plan.apply_due(system, engine.steps(), rng) > 0) engine.reset_ages();
    if (!engine.step()) break;
  }
  EXPECT_GT(raw->calls, 0u);
}

TEST(CandidateOrder, IncrementalIsProcessActionAscending) {
  check_candidate_order(ScanMode::kIncremental);
}

TEST(CandidateOrder, FullScanIsProcessActionAscending) {
  check_candidate_order(ScanMode::kFullScan);
}

// --- conservative-default programs behave as before -----------------------

TEST(IncrementalDifferential, DefaultAffectedFallsBackToFullScanSemantics) {
  // CounterProgram does not override affected(); external crash() without
  // any invalidate call must still be picked up, exactly like the classic
  // engine, because the conservative default re-scans every step.
  for (const auto mode : {ScanMode::kIncremental, ScanMode::kFullScan}) {
    testing::CounterProgram program(4, 1000);
    Engine engine(program, make_daemon("round-robin", 1), 64, mode);
    for (int s = 0; s < 40; ++s) ASSERT_TRUE(engine.step().has_value());
    program.crash(2);  // un-announced: allowed for conservative programs
    for (int s = 0; s < 40; ++s) ASSERT_TRUE(engine.step().has_value());
    EXPECT_EQ(program.count(2), 10u);  // stopped incrementing at the crash
  }
}

TEST(IncrementalDifferential, TerminationIsNeverCachedAcrossMutation) {
  // Run a tiny program to termination, then revive work externally; the
  // engine must notice without an explicit invalidate (conservative
  // program), in both modes.
  for (const auto mode : {ScanMode::kIncremental, ScanMode::kFullScan}) {
    testing::CounterProgram program(2, 3);
    Engine engine(program, make_daemon("round-robin", 1), 64, mode);
    const auto result = engine.run(100);
    EXPECT_EQ(result.outcome, RunOutcome::kTerminated);
    EXPECT_EQ(engine.enabled_count(), 0u);
    EXPECT_FALSE(engine.step().has_value());
  }
}

}  // namespace
}  // namespace diners::sim
