// Miniature guarded-command programs used to exercise the engine and
// daemons independently of the diners algorithm.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/generators.hpp"
#include "runtime/program.hpp"

namespace diners::sim::testing {

/// Every process has one action "inc" that increments a local counter while
/// it is below `limit`; processes can be crashed.
class CounterProgram final : public Program {
 public:
  CounterProgram(ProcessId n, std::uint64_t limit)
      : graph_(graph::make_path(n)),
        limit_(limit),
        counts_(n, 0),
        alive_(n, 1) {}

  const graph::Graph& topology() const override { return graph_; }
  ActionIndex num_actions(ProcessId) const override { return 1; }
  std::string_view action_name(ProcessId, ActionIndex) const override {
    return "inc";
  }
  bool enabled(ProcessId p, ActionIndex) const override {
    return counts_[p] < limit_;
  }
  void execute(ProcessId p, ActionIndex) override { ++counts_[p]; }
  bool alive(ProcessId p) const override { return alive_[p] != 0; }

  void crash(ProcessId p) { alive_[p] = 0; }
  [[nodiscard]] std::uint64_t count(ProcessId p) const { return counts_[p]; }

 private:
  graph::Graph graph_;
  std::uint64_t limit_;
  std::vector<std::uint64_t> counts_;
  std::vector<std::uint8_t> alive_;
};

/// A process with two actions whose enabledness alternates: "ping" is
/// enabled when the bit is 0, "pong" when it is 1. Used to check that ages
/// reset when an action is disabled.
class PingPongProgram final : public Program {
 public:
  PingPongProgram() : graph_(graph::make_path(1)) {}

  const graph::Graph& topology() const override { return graph_; }
  ActionIndex num_actions(ProcessId) const override { return 2; }
  std::string_view action_name(ProcessId, ActionIndex a) const override {
    return a == 0 ? "ping" : "pong";
  }
  bool enabled(ProcessId, ActionIndex a) const override {
    return (a == 0) == (bit_ == 0);
  }
  void execute(ProcessId, ActionIndex) override { bit_ ^= 1; }
  bool alive(ProcessId) const override { return true; }

 private:
  graph::Graph graph_;
  int bit_ = 0;
};

}  // namespace diners::sim::testing
