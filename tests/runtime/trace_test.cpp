#include "runtime/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "test_programs.hpp"

namespace diners::sim {
namespace {

using testing::CounterProgram;

TEST(TraceRecorder, RecordsEveryEvent) {
  CounterProgram prog(2, 2);
  Engine engine(prog, std::make_unique<RoundRobinDaemon>());
  TraceRecorder trace;
  trace.attach(engine);
  engine.run(100);
  EXPECT_EQ(trace.events().size(), 4u);
  EXPECT_EQ(trace.events()[0].step, 0u);
  EXPECT_EQ(trace.events()[0].action_name, "inc");
}

TEST(TraceRecorder, CountPerProcess) {
  CounterProgram prog(3, 4);
  Engine engine(prog, std::make_unique<RoundRobinDaemon>());
  TraceRecorder trace;
  trace.attach(engine);
  engine.run(1000);
  for (ProcessId p = 0; p < 3; ++p) {
    EXPECT_EQ(trace.count(p, "inc"), 4u);
    EXPECT_EQ(trace.count(p, "nothing"), 0u);
  }
}

TEST(TraceRecorder, FirstOccurrence) {
  CounterProgram prog(2, 3);
  Engine engine(prog, std::make_unique<RoundRobinDaemon>());
  TraceRecorder trace;
  trace.attach(engine);
  engine.run(100);
  EXPECT_EQ(trace.first(0, "inc"), 0u);
  EXPECT_EQ(trace.first(1, "inc"), 1u);
  EXPECT_EQ(trace.first(0, "absent"), static_cast<std::uint64_t>(-1));
}

TEST(TraceRecorder, ClearEmpties) {
  CounterProgram prog(1, 1);
  Engine engine(prog, std::make_unique<RoundRobinDaemon>());
  TraceRecorder trace;
  trace.attach(engine);
  engine.run(10);
  ASSERT_FALSE(trace.events().empty());
  trace.clear();
  EXPECT_TRUE(trace.events().empty());
}

TEST(TraceRecorder, PrintUsesNamer) {
  CounterProgram prog(1, 1);
  Engine engine(prog, std::make_unique<RoundRobinDaemon>());
  TraceRecorder trace;
  trace.attach(engine);
  engine.run(10);
  std::ostringstream os;
  trace.print(os, [](ProcessId) { return std::string("alice"); });
  EXPECT_EQ(os.str(), "step 0: alice inc\n");
  std::ostringstream os2;
  trace.print(os2);
  EXPECT_EQ(os2.str(), "step 0: p0 inc\n");
}

}  // namespace
}  // namespace diners::sim
