// Differential battery for the wide stepping path (DESIGN.md §11):
//
//  * DinersSystem::guard_block — the SIMD block sweep — is fuzz-pinned
//    bit-identical to the scalar guard_mask() on every backend this
//    machine supports, across corrupted states, dead processes, partial
//    tail blocks, and n < 64 edge cases;
//  * spread_guard_lanes (BMI2 pdep or portable) is pinned against the
//    portable reference and the positional definition;
//  * FlatEngine traces stay byte-identical to the object-model oracle for
//    every step_jobs value, under malicious crashes, global corruption,
//    and crash-restart rejoin — including topologies (stars) whose every
//    step takes the block-sharded wide-refresh path.
//
// Test names include "FlatEngine" so the TSan CI job's regex picks the
// sharded runs up under the race detector.
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/diners_system.hpp"
#include "core/flat_engine.hpp"
#include "core/guard_sweep.hpp"
#include "fault/injector.hpp"
#include "graph/generators.hpp"
#include "runtime/daemon.hpp"
#include "runtime/engine.hpp"
#include "util/rng.hpp"

namespace diners::core {
namespace {

/// Everything this machine can run guard_block on (portable always;
/// AVX2/NEON when set_sweep_backend accepts them).
std::vector<SweepBackend> supported_backends() {
  std::vector<SweepBackend> backends{SweepBackend::kPortable};
  for (const SweepBackend b : {SweepBackend::kAvx2, SweepBackend::kNeon}) {
    try {
      set_sweep_backend(b);
      backends.push_back(b);
    } catch (const std::invalid_argument&) {
    }
  }
  set_sweep_backend(SweepBackend::kAuto);
  return backends;
}

/// Restores autodetection even when an assertion bails out of a test.
struct BackendGuard {
  ~BackendGuard() { set_sweep_backend(SweepBackend::kAuto); }
};

// --- guard_block vs scalar guard_mask -------------------------------------

TEST(FlatEngineGuardSweep, BlockMatchesGuardMaskOnEveryBackend) {
  // Sizes cover n < 64, exact blocks, straddling tails one past a block,
  // and multi-block ranges with non-multiple-of-64 tails.
  const std::uint32_t sizes[] = {3, 7, 61, 64, 65, 100, 127, 128, 192};
  BackendGuard restore;
  for (const SweepBackend backend : supported_backends()) {
    set_sweep_backend(backend);
    ASSERT_EQ(active_sweep_backend(), backend);
    for (const std::uint32_t n : sizes) {
      DinersSystem system(graph::make_connected_gnp(n, 0.15, /*seed=*/n));
      util::Xoshiro256 rng(util::derive_seed(n, 7));
      for (int round = 0; round < 20; ++round) {
        fault::corrupt_global_state(system, rng);
        // Corrupt liveness too: kill a couple of processes mid-fuzz so the
        // alive lane is exercised (crash is sticky, so only on round 5).
        if (round == 5) {
          system.crash(n / 2);
          system.crash(n - 1);
        }
        for (std::uint32_t base = 0; base < n; base += 64) {
          const std::uint32_t count = std::min<std::uint32_t>(64, n - base);
          GuardBlock gb;
          system.guard_block(base, count, gb);
          for (std::uint32_t j = 0; j < count; ++j) {
            const DinersSystem::ProcessId p = base + j;
            const std::uint32_t mask = system.guard_mask(p);
            for (std::uint32_t a = 0; a < DinersSystem::kNumActions; ++a) {
              ASSERT_EQ((gb.lane[a] >> j) & 1u,
                        static_cast<std::uint64_t>((mask >> a) & 1u))
                  << "backend " << to_string(backend) << " n " << n
                  << " round " << round << " process " << p << " action "
                  << a;
            }
            ASSERT_EQ((gb.alive >> j) & 1u,
                      static_cast<std::uint64_t>(system.alive(p) ? 1 : 0))
                << "backend " << to_string(backend) << " n " << n
                << " process " << p;
          }
          // Bits at and above count must be zero in every lane.
          if (count < 64) {
            const std::uint64_t tail = ~0ULL << count;
            for (std::uint32_t a = 0; a < DinersSystem::kNumActions; ++a) {
              ASSERT_EQ(gb.lane[a] & tail, 0u)
                  << "backend " << to_string(backend) << " n " << n;
            }
            ASSERT_EQ(gb.alive & tail, 0u);
          }
        }
      }
    }
  }
}

TEST(FlatEngineGuardSweep, BackendControlRejectsUnsupported) {
  BackendGuard restore;
  // At most one of AVX2/NEON exists on any one machine; the other must be
  // rejected, not silently accepted.
#if defined(__x86_64__) || defined(_M_X64)
  EXPECT_THROW(set_sweep_backend(SweepBackend::kNeon), std::invalid_argument);
#endif
#if defined(__aarch64__)
  EXPECT_THROW(set_sweep_backend(SweepBackend::kAvx2), std::invalid_argument);
#endif
  set_sweep_backend(SweepBackend::kPortable);
  EXPECT_EQ(active_sweep_backend(), SweepBackend::kPortable);
  set_sweep_backend(SweepBackend::kAuto);
  EXPECT_NE(active_sweep_backend(), SweepBackend::kAuto);  // resolved
}

// --- lane spread -----------------------------------------------------------

TEST(FlatEngineGuardSweep, SpreadInterleavesLanesExactly) {
  util::Xoshiro256 rng(1234);
  for (int round = 0; round < 200; ++round) {
    std::uint64_t lanes[DinersSystem::kNumActions];
    for (auto& lane : lanes) lane = rng.next();
    std::uint64_t dispatched[DinersSystem::kNumActions];
    std::uint64_t portable[DinersSystem::kNumActions];
    spread_guard_lanes(lanes, dispatched);
    spread_guard_lanes_portable(lanes, portable);
    for (std::uint32_t w = 0; w < DinersSystem::kNumActions; ++w) {
      ASSERT_EQ(dispatched[w], portable[w]) << "word " << w;
    }
    // Positional definition: bit 5j + a of the 320-bit output equals bit j
    // of lane a.
    for (std::uint32_t j = 0; j < 64; ++j) {
      for (std::uint32_t a = 0; a < DinersSystem::kNumActions; ++a) {
        const std::uint32_t pos = DinersSystem::kNumActions * j + a;
        ASSERT_EQ((dispatched[pos >> 6] >> (pos & 63)) & 1u,
                  (lanes[a] >> j) & 1u)
            << "j " << j << " a " << a;
      }
    }
  }
}

// --- step_jobs trace invariance -------------------------------------------

std::string format(const sim::StepRecord& r) {
  std::ostringstream out;
  out << r.step << ':' << r.process << ':' << r.action << ':' << r.action_name;
  return out.str();
}

struct FaultSchedule {
  std::vector<fault::CrashEvent> crashes;
  std::uint64_t corrupt_at = 0;
  std::uint64_t restart_at = 0;
};

/// Identical driver to flat_engine_test.cpp's, with step_jobs threaded
/// through (kObject ignores it).
std::vector<std::string> run_diners(const graph::Graph& g,
                                    const std::string& daemon,
                                    const FaultSchedule& faults,
                                    std::uint64_t steps, sim::EngineKind kind,
                                    unsigned step_jobs = 1) {
  DinersSystem system(g);
  std::unique_ptr<sim::EngineBase> engine;
  if (kind == sim::EngineKind::kFlat) {
    engine = std::make_unique<FlatEngine>(system, daemon, /*daemon_seed=*/7,
                                          /*fairness_bound=*/64,
                                          /*rebuild_jobs=*/1, step_jobs);
  } else {
    engine = std::make_unique<sim::Engine>(
        system, sim::make_daemon(daemon, /*seed=*/7), /*fairness_bound=*/64);
  }
  std::vector<std::string> trace;
  engine->add_observer(
      [&](const sim::StepRecord& r) { trace.push_back(format(r)); });

  fault::CrashPlan plan(faults.crashes);
  util::Xoshiro256 crash_rng(21);
  util::Xoshiro256 corrupt_rng(22);
  bool corrupted = false;
  bool restarted = false;
  for (std::uint64_t s = 0; s < steps; ++s) {
    if (plan.apply_due(system, engine->steps(), crash_rng) > 0) {
      engine->reset_ages();
    }
    if (faults.corrupt_at != 0 && !corrupted &&
        engine->steps() >= faults.corrupt_at) {
      fault::corrupt_global_state(system, corrupt_rng);
      engine->reset_ages();
      corrupted = true;
    }
    if (faults.restart_at != 0 && !restarted &&
        engine->steps() >= faults.restart_at && !faults.crashes.empty()) {
      system.restart(faults.crashes.front().process);
      engine->reset_ages();
      restarted = true;
    }
    if (!engine->step()) break;
  }
  return trace;
}

const char* const kDaemons[] = {"round-robin", "random", "adversarial-age",
                                "biased"};

void expect_step_jobs_invariant(const graph::Graph& g,
                                const FaultSchedule& faults,
                                std::uint64_t steps) {
  for (const auto* daemon : kDaemons) {
    const auto oracle =
        run_diners(g, daemon, faults, steps, sim::EngineKind::kObject);
    for (const unsigned step_jobs : {1u, 2u, 3u, 8u}) {
      const auto flat = run_diners(g, daemon, faults, steps,
                                   sim::EngineKind::kFlat, step_jobs);
      ASSERT_EQ(oracle.size(), flat.size())
          << "daemon " << daemon << " step_jobs " << step_jobs;
      for (std::size_t i = 0; i < flat.size(); ++i) {
        ASSERT_EQ(oracle[i], flat[i]) << "daemon " << daemon << " step_jobs "
                                      << step_jobs << " trace index " << i;
      }
    }
  }
}

TEST(FlatEngineWideStep, StarStepJobsMatchObjectEngine) {
  // Every center step dirties all n processes, so with step_jobs > 1 each
  // refresh takes the block-sharded wide path. 300 > kWideRefreshMinDirty.
  const auto g = graph::make_star(300);
  FaultSchedule faults;
  faults.crashes = {fault::CrashEvent{400, 0, 16}};  // kill the center
  faults.corrupt_at = 900;
  faults.restart_at = 1600;
  expect_step_jobs_invariant(g, faults, 2500);
}

TEST(FlatEngineWideStep, RingTailBlockStepJobsMatchObjectEngine) {
  // n = 65: the second block holds one process — the wide path's smallest
  // partial tail (its guard words cover slots 320..324 of word 5).
  const auto g = graph::make_ring(65);
  FaultSchedule faults;
  faults.crashes = {fault::CrashEvent{300, 64, 24}};
  faults.corrupt_at = 700;
  expect_step_jobs_invariant(g, faults, 2500);
}

TEST(FlatEngineWideStep, SmallGnpStepJobsMatchObjectEngine) {
  // n < 64: a single partial block; step_jobs above the block count must
  // degrade gracefully (pool workers idle) without touching the trace.
  const auto g = graph::make_connected_gnp(61, 0.1, /*seed=*/9);
  FaultSchedule faults;
  faults.crashes = {fault::CrashEvent{250, 7, 12}};
  faults.corrupt_at = 600;
  faults.restart_at = 1200;
  expect_step_jobs_invariant(g, faults, 2500);
}

TEST(FlatEngineWideStep, SweepBackendDoesNotChangeTraces) {
  // The same corrupted star run, portable vs every SIMD backend: rebuilds
  // and wide refreshes both route through guard_block, so a backend
  // disagreement would surface as a trace divergence.
  const auto g = graph::make_star(300);
  FaultSchedule faults;
  faults.corrupt_at = 500;
  BackendGuard restore;
  for (const auto* daemon : kDaemons) {
    set_sweep_backend(SweepBackend::kPortable);
    const auto portable =
        run_diners(g, daemon, faults, 2000, sim::EngineKind::kFlat, 4);
    for (const SweepBackend backend : supported_backends()) {
      set_sweep_backend(backend);
      const auto other =
          run_diners(g, daemon, faults, 2000, sim::EngineKind::kFlat, 4);
      ASSERT_EQ(portable, other)
          << "daemon " << daemon << " backend " << to_string(backend);
    }
  }
}

TEST(FlatEngineWideStep, RejectsZeroStepJobs) {
  DinersSystem system(graph::make_ring(4));
  EXPECT_THROW(FlatEngine(system, "round-robin", 1, 64, /*rebuild_jobs=*/1,
                          /*step_jobs=*/0),
               std::invalid_argument);
}

}  // namespace
}  // namespace diners::core
