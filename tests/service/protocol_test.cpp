#include "service/protocol.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace diners::service {
namespace {

std::vector<Frame> all_frames() {
  return {
      make_hello(7),
      make_acquire(1),
      make_grant(0xdeadbeefcafe01ULL),
      make_release(2),
      make_released(2),
      make_cancel(3),
      make_revoked(4),
      make_reject(5, RejectReason::kBadFrame),
  };
}

TEST(Protocol, EncodeDecodeRoundTripsEveryFrameType) {
  for (const Frame& f : all_frames()) {
    std::vector<std::uint8_t> wire;
    encode_frame(f, wire);
    FrameDecoder dec;
    dec.feed(wire.data(), wire.size());
    const auto got = dec.next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, f);
    EXPECT_FALSE(dec.next().has_value());  // exactly one frame
    EXPECT_FALSE(dec.poisoned());
  }
}

TEST(Protocol, HelloCarriesNodeAndVersion) {
  const Frame f = make_hello(123);
  EXPECT_EQ(f.node, 123u);
  EXPECT_EQ(f.version, kProtocolVersion);
}

TEST(Protocol, DecodesByteAtATime) {
  // TCP-grade reassembly: frames split at every possible byte boundary
  // must decode identically.
  std::vector<std::uint8_t> wire;
  for (const Frame& f : all_frames()) encode_frame(f, wire);
  FrameDecoder dec;
  std::vector<Frame> got;
  for (const std::uint8_t byte : wire) {
    dec.feed(&byte, 1);
    while (auto f = dec.next()) got.push_back(*f);
  }
  const auto expected = all_frames();
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], expected[i]);
}

TEST(Protocol, DecodesCoalescedFrames) {
  // ... and arbitrarily coalesced (one feed, many frames).
  std::vector<std::uint8_t> wire;
  for (const Frame& f : all_frames()) encode_frame(f, wire);
  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  std::size_t count = 0;
  while (dec.next().has_value()) ++count;
  EXPECT_EQ(count, all_frames().size());
  EXPECT_FALSE(dec.poisoned());
}

TEST(Protocol, OversizedLengthPoisons) {
  const std::uint32_t huge = kMaxFrameBody + 1;
  std::uint8_t wire[4] = {
      static_cast<std::uint8_t>(huge & 0xff),
      static_cast<std::uint8_t>((huge >> 8) & 0xff),
      static_cast<std::uint8_t>((huge >> 16) & 0xff),
      static_cast<std::uint8_t>((huge >> 24) & 0xff),
  };
  FrameDecoder dec;
  dec.feed(wire, sizeof(wire));
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_TRUE(dec.poisoned());
  EXPECT_NE(dec.error().find("length"), std::string::npos);
}

TEST(Protocol, ZeroLengthPoisons) {
  const std::uint8_t wire[4] = {0, 0, 0, 0};
  FrameDecoder dec;
  dec.feed(wire, sizeof(wire));
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_TRUE(dec.poisoned());
}

TEST(Protocol, UnknownTypePoisons) {
  // Body of 9 bytes (the id-frame length) but a type byte nothing maps to.
  std::vector<std::uint8_t> wire = {9, 0, 0, 0, 0x7f};
  wire.resize(4 + 9, 0);
  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_TRUE(dec.poisoned());
}

TEST(Protocol, WrongBodyLengthForTypePoisons) {
  // An ACQUIRE (needs 9 body bytes) framed with the HELLO length of 7.
  std::vector<std::uint8_t> wire = {
      7, 0, 0, 0, static_cast<std::uint8_t>(FrameType::kAcquire)};
  wire.resize(4 + 7, 0);
  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_TRUE(dec.poisoned());
}

TEST(Protocol, PoisonIsSticky) {
  FrameDecoder dec;
  const std::uint8_t bad[4] = {0, 0, 0, 0};
  dec.feed(bad, sizeof(bad));
  EXPECT_FALSE(dec.next().has_value());
  ASSERT_TRUE(dec.poisoned());
  // A perfectly valid frame after the poison must NOT resurrect the
  // stream: framing cannot resynchronize after a grammar violation.
  std::vector<std::uint8_t> good;
  encode_frame(make_acquire(1), good);
  dec.feed(good.data(), good.size());
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_TRUE(dec.poisoned());
}

TEST(Protocol, PartialFrameIsNotAFrameYet) {
  std::vector<std::uint8_t> wire;
  encode_frame(make_grant(42), wire);
  FrameDecoder dec;
  dec.feed(wire.data(), wire.size() - 1);
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_FALSE(dec.poisoned());  // incomplete, not invalid
  dec.feed(wire.data() + wire.size() - 1, 1);
  const auto got = dec.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->id, 42u);
}

TEST(Protocol, LongStreamRecyclesBufferSpace) {
  // Push enough frames through one decoder to force the lazy compaction
  // path several times over; every frame must still decode in order.
  FrameDecoder dec;
  std::vector<std::uint8_t> wire;
  std::uint64_t next_expected = 0;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    wire.clear();
    encode_frame(make_acquire(i), wire);
    dec.feed(wire.data(), wire.size());
    while (auto f = dec.next()) {
      EXPECT_EQ(f->id, next_expected);
      ++next_expected;
    }
  }
  EXPECT_EQ(next_expected, 10000u);
  EXPECT_FALSE(dec.poisoned());
}

}  // namespace
}  // namespace diners::service
