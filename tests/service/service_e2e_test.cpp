// End-to-end tests of the diners service: real Unix-domain sockets, real
// threads, the real protocol underneath. Timing assertions are deliberately
// coarse (hundreds of milliseconds of slack) so the suite stays green under
// sanitizer slowdowns; anything sharper belongs to the simulated backends.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <sstream>
#include <string>

#include "chaos/watchdog.hpp"
#include "graph/generators.hpp"
#include "service/arbiter.hpp"
#include "service/client.hpp"
#include "service/live_campaign.hpp"
#include "service/load.hpp"
#include "service/slo.hpp"

namespace diners::service {
namespace {

using Clock = DinersClient::Clock;

std::string test_socket_dir() {
  // Short and unique-enough per test program: sockaddr_un caps path length,
  // so deep CI work dirs are off the table.
  const std::string dir =
      "/tmp/diners-e2e-" + std::to_string(::getpid());
  (void)std::system(("mkdir -p " + dir).c_str());
  return dir;
}

ClientOptions client_options(const ServiceHost& host, graph::NodeId node,
                             std::uint64_t seed) {
  ClientOptions options;
  options.endpoint = host.endpoint(node);
  options.seed = seed;
  return options;
}

Clock::time_point in_ms(std::uint32_t ms) {
  return Clock::now() + std::chrono::milliseconds(ms);
}

TEST(ServiceE2E, GrantHoldReleaseRoundTrip) {
  ServiceOptions sopts;
  sopts.socket_dir = test_socket_dir();
  ServiceHost host(graph::make_ring(4), sopts);
  host.start();

  DinersClient client(client_options(host, 0, 1));
  ASSERT_EQ(client.acquire(in_ms(5000)), AcquireOutcome::kGranted);
  EXPECT_TRUE(client.holds_lease());
  ASSERT_TRUE(client.server_node().has_value());
  EXPECT_EQ(*client.server_node(), 0u);
  EXPECT_EQ(client.release(in_ms(5000)), ReleaseOutcome::kReleased);
  EXPECT_FALSE(client.holds_lease());

  const ServiceStats stats = host.stats();
  EXPECT_EQ(stats.grants, 1u);
  EXPECT_EQ(stats.releases, 1u);
  EXPECT_EQ(stats.revocations, 0u);
  host.stop();
}

TEST(ServiceE2E, LeaseExcludesNeighborUntilReleased) {
  // The heart of the lease semantics: while a client HOLDS node 0's
  // critical section (for many protocol steps — far longer than the
  // protocol's one-step meals), a neighbor's client cannot enter; a
  // distance-2 client can. After release the neighbor gets in.
  ServiceOptions sopts;
  sopts.socket_dir = test_socket_dir();
  ServiceHost host(graph::make_ring(5), sopts);
  host.start();

  DinersClient holder(client_options(host, 0, 1));
  ASSERT_EQ(holder.acquire(in_ms(5000)), AcquireOutcome::kGranted);

  DinersClient neighbor(client_options(host, 1, 2));
  EXPECT_EQ(neighbor.acquire(in_ms(400)), AcquireOutcome::kTimeout);

  DinersClient distant(client_options(host, 2, 3));  // not adjacent to 0
  EXPECT_EQ(distant.acquire(in_ms(5000)), AcquireOutcome::kGranted);
  EXPECT_EQ(distant.release(in_ms(5000)), ReleaseOutcome::kReleased);

  EXPECT_EQ(holder.release(in_ms(5000)), ReleaseOutcome::kReleased);
  EXPECT_EQ(neighbor.acquire(in_ms(5000)), AcquireOutcome::kGranted);
  EXPECT_EQ(neighbor.release(in_ms(5000)), ReleaseOutcome::kReleased);
  host.stop();
}

TEST(ServiceE2E, QueuedRequestsOnOneNodeGrantInFifoOrder) {
  ServiceOptions sopts;
  sopts.socket_dir = test_socket_dir();
  ServiceHost host(graph::make_ring(4), sopts);
  host.start();

  DinersClient first(client_options(host, 2, 1));
  DinersClient second(client_options(host, 2, 2));
  ASSERT_EQ(first.acquire(in_ms(5000)), AcquireOutcome::kGranted);
  // Second queues behind the held lease and cannot be granted yet.
  EXPECT_EQ(second.acquire(in_ms(300)), AcquireOutcome::kTimeout);
  EXPECT_EQ(first.release(in_ms(5000)), ReleaseOutcome::kReleased);
  // Now the queue drains to it.
  EXPECT_EQ(second.acquire(in_ms(5000)), AcquireOutcome::kGranted);
  EXPECT_EQ(second.release(in_ms(5000)), ReleaseOutcome::kReleased);
  host.stop();
}

TEST(ServiceE2E, CrashDropsEndpointRestartRecoversIt) {
  ServiceOptions sopts;
  sopts.socket_dir = test_socket_dir();
  ServiceHost host(graph::make_ring(5), sopts);
  host.start();

  DinersClient client(client_options(host, 0, 1));
  ASSERT_EQ(client.acquire(in_ms(5000)), AcquireOutcome::kGranted);

  host.crash(/*victim=*/0, /*malice=*/4);
  // The lease died with the endpoint: release observes the loss.
  EXPECT_EQ(client.release(in_ms(2000)), ReleaseOutcome::kRevoked);
  // While the arbiter is down, acquires fail by timeout (ENOENT + backoff).
  EXPECT_EQ(client.acquire(in_ms(400)), AcquireOutcome::kTimeout);

  host.restart(0);
  // Reconnect-on-crash: the same client object recovers through backoff.
  EXPECT_EQ(client.acquire(in_ms(5000)), AcquireOutcome::kGranted);
  EXPECT_EQ(client.release(in_ms(5000)), ReleaseOutcome::kReleased);
  EXPECT_GE(client.reconnects(), 1u);

  // And the protocol layer reconverges under the watchdog.
  chaos::WatchdogOptions watchdog;
  const auto verdict = host.await_recovery(watchdog);
  EXPECT_TRUE(verdict.ok()) << verdict.failure;
  host.stop();
}

TEST(ServiceE2E, CrashOfDistantArbiterDoesNotBlockFarClient) {
  // Failure locality as a live-service property, in miniature: node 0
  // crashes and STAYS down; a client of node 3 (distance >= 3 on ring-7)
  // keeps acquiring happily throughout.
  ServiceOptions sopts;
  sopts.socket_dir = test_socket_dir();
  ServiceHost host(graph::make_ring(7), sopts);
  host.start();

  host.crash(/*victim=*/0, /*malice=*/6);
  DinersClient far_client(client_options(host, 3, 1));
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(far_client.acquire(in_ms(5000)), AcquireOutcome::kGranted)
        << "iteration " << i;
    ASSERT_EQ(far_client.release(in_ms(5000)), ReleaseOutcome::kReleased);
  }
  host.stop();
}

// The acceptance pin for the whole feature: service up -> open-loop load
// -> malicious crash mid-load -> restart -> convergence watchdog -> SLO
// report. Far clients (distance >= 3) must keep their p99 through the
// impact window with zero timeouts; the protocol must reconverge.
TEST(ServiceE2E, LiveCampaignKeepsFarSloThroughMaliciousCrash) {
  LiveCampaignOptions options;
  options.graph = graph::make_ring(8);
  options.socket_dir = test_socket_dir();
  options.victim = 0;
  options.malice = 6;
  options.crash_at_ms = 300.0;
  options.restart_at_ms = 900.0;
  options.load.clients = 8;
  options.load.rps = 120.0;
  options.load.duration_ms = 1500;
  options.load.deadline_ms = 400;
  options.load.hold_us = 200;
  options.load.seed = 7;
  options.mp.seed = 7;
  // Generous budgets: sanitizer builds run this too.
  options.p99_budget_ms = 400.0;

  const LiveCampaignResult result = run_live_campaign(options);

  // The run really happened, through real sockets.
  EXPECT_GT(result.load.records.size(), 100u);
  EXPECT_GT(result.service.grants, 0u);
  EXPECT_GT(result.service.meals, 0u);

  // Recovery: the watchdog converged after the restart.
  EXPECT_TRUE(result.slo.recovered) << result.slo.recovery_failure;

  // Failure locality, as an SLO: distance >= 3 clients never noticed.
  EXPECT_TRUE(result.slo.far_impact_p99_ok);
  EXPECT_TRUE(result.slo.far_impact_clean);
  EXPECT_TRUE(result.slo.slo_ok());

  // The near stratum DID notice (the victim's own clients must time out
  // while their arbiter is down — if they didn't, the campaign proved
  // nothing about locality).
  std::uint64_t near_impact_timeouts = 0;
  std::uint64_t far_impact_requests = 0;
  for (const auto& slice : result.slo.slices) {
    if (slice.phase != "impact") continue;
    if (slice.stratum == "near") near_impact_timeouts = slice.stats.timeouts;
    if (slice.stratum == "far") far_impact_requests = slice.stats.requests;
  }
  EXPECT_GT(near_impact_timeouts, 0u);
  EXPECT_GT(far_impact_requests, 0u);  // the far claim is non-vacuous

  // And the SLO report renders as JSON without blowing up.
  std::ostringstream os;
  write_slo_json(os, result.slo);
  EXPECT_NE(os.str().find("\"schema\": \"diners-slo/v1\""), std::string::npos);
  EXPECT_NE(os.str().find("\"slo_ok\": true"), std::string::npos);
}

TEST(ServiceE2E, LoadGeneratorValidatesOptions) {
  LoadOptions options;
  options.socket_dir = "/tmp";
  options.num_nodes = 0;
  EXPECT_THROW((void)run_load(options), std::invalid_argument);
  options.num_nodes = 4;
  options.clients = 0;
  EXPECT_THROW((void)run_load(options), std::invalid_argument);
  options.clients = 2;
  options.rps = 0.0;
  EXPECT_THROW((void)run_load(options), std::invalid_argument);
}

TEST(ServiceE2E, SloReportFailsVacuousFarClaim) {
  // An impact window with no far-stratum traffic must NOT pass the SLO:
  // build a report from an empty load and check the verdict is negative
  // even though nothing violated the budget.
  const auto g = graph::make_ring(8);
  LoadReport empty;
  chaos::WatchdogVerdict converged;
  converged.converged = true;
  SloOptions options;
  options.victim = 0;
  options.crash_at_ms = 100.0;
  options.recovered_at_ms = 200.0;
  const SloReport report = build_slo_report(g, empty, converged, options);
  EXPECT_TRUE(report.recovered);
  EXPECT_FALSE(report.far_impact_p99_ok);
  EXPECT_FALSE(report.slo_ok());
}

}  // namespace
}  // namespace diners::service
