// Tests that the threaded runtime delivers *real* concurrency and keeps the
// analysis bridge consistent under stress.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "analysis/invariants.hpp"
#include "analysis/red_green.hpp"
#include "graph/generators.hpp"
#include "threads/threaded_diners.hpp"

namespace diners::threads {
namespace {

using P = ThreadedDiners::ProcessId;

TEST(ThreadedConcurrency, IndependentMealsOverlapInRealTime) {
  // On a long ring with non-zero eat time, snapshots must observe several
  // philosophers eating simultaneously — proof the implementation is not
  // secretly serialized.
  ThreadedDiners t(graph::make_ring(16), {},
                   ThreadedOptions{.eat_us = 300, .idle_us = 0, .seed = 4});
  t.start();
  std::size_t max_concurrent = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(4);
  while (std::chrono::steady_clock::now() < deadline) {
    const auto snap = t.snapshot();
    std::size_t eating = 0;
    for (P p = 0; p < 16; ++p) {
      if (snap.state(p) == core::DinerState::kEating) ++eating;
    }
    max_concurrent = std::max(max_concurrent, eating);
    if (max_concurrent >= 3) break;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  t.stop();
  EXPECT_GE(max_concurrent, 3u);
}

TEST(ThreadedConcurrency, SnapshotsNeverTearPriorityEdges) {
  // Each snapshot is taken under all locks, so the priority graph read out
  // is a consistent cut: it must always be a valid orientation (every edge
  // owned by one of its endpoints — guaranteed by types — and NC must only
  // flip through legal transitions, i.e. never show a live cycle from a
  // clean start).
  ThreadedDiners t(graph::make_ring(8), {},
                   ThreadedOptions{.eat_us = 0, .idle_us = 0, .seed = 5});
  t.start();
  for (int i = 0; i < 400; ++i) {
    const auto snap = t.snapshot();
    ASSERT_TRUE(analysis::holds_nc(snap)) << "snapshot " << i;
  }
  t.stop();
}

TEST(ThreadedConcurrency, RedSetStaysLocalDuringLiveMaliciousCrash) {
  ThreadedDiners t(graph::make_grid(4, 4), {},
                   ThreadedOptions{.eat_us = 0, .idle_us = 0, .seed = 6});
  t.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  t.malicious_crash(5, 128);
  // While the malicious writes land and afterwards, the red set computed on
  // any consistent snapshot stays within distance 2 of the corpse.
  for (int i = 0; i < 200; ++i) {
    const auto snap = t.snapshot();
    ASSERT_LE(analysis::red_radius(snap), 2u) << "snapshot " << i;
  }
  t.stop();
}

TEST(ThreadedConcurrency, ManyCrashesDoNotWedgeTheRest) {
  // Ring of 18 with corpses at 0, 6, 12: nodes 3, 9, 15 sit at distance 3
  // from every corpse and must keep eating.
  ThreadedDiners t(graph::make_ring(18), {},
                   ThreadedOptions{.eat_us = 0, .idle_us = 0, .seed = 7});
  t.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  t.crash(0);
  t.malicious_crash(6, 32);
  t.crash(12);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const auto base3 = t.meals(3);
  const auto base9 = t.meals(9);
  const auto base15 = t.meals(15);
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  EXPECT_GT(t.meals(3), base3);
  EXPECT_GT(t.meals(9), base9);
  EXPECT_GT(t.meals(15), base15);
  t.stop();
}

}  // namespace
}  // namespace diners::threads
