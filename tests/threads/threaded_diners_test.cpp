// Tests for the real-concurrency substrate. These run actual threads, so
// they assert eventual properties with generous timeouts and consistent
// snapshots rather than step-exact behavior.
#include "threads/threaded_diners.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "analysis/invariants.hpp"
#include "analysis/harness.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace diners::threads {
namespace {

using core::DinerState;
using P = ThreadedDiners::ProcessId;

// Polls `predicate` until it returns true or the deadline passes.
template <typename F>
bool eventually(F&& predicate, std::chrono::milliseconds deadline =
                                   std::chrono::milliseconds(5000)) {
  const auto start = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - start < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return predicate();
}

TEST(ThreadedDiners, RejectsDisconnectedTopology) {
  graph::Graph::Builder b(4);
  b.add_edge(0, 1).add_edge(2, 3);
  EXPECT_THROW(ThreadedDiners(std::move(b).build()), std::invalid_argument);
}

TEST(ThreadedDiners, StartTwiceThrows) {
  ThreadedDiners t(graph::make_path(2));
  t.start();
  EXPECT_THROW(t.start(), std::logic_error);
  t.stop();
}

TEST(ThreadedDiners, EveryoneEatsFaultFree) {
  ThreadedDiners t(graph::make_ring(6), {}, {.eat_us = 0, .idle_us = 0});
  t.start();
  ASSERT_TRUE(eventually([&] {
    for (P p = 0; p < 6; ++p) {
      if (t.meals(p) == 0) return false;
    }
    return true;
  }));
  t.stop();
}

TEST(ThreadedDiners, SnapshotsSatisfySafetyThroughout) {
  ThreadedDiners t(graph::make_ring(8), {}, {.eat_us = 20, .idle_us = 0});
  t.start();
  for (int i = 0; i < 300; ++i) {
    const auto snap = t.snapshot();
    ASSERT_EQ(analysis::eating_violation_count(snap), 0u)
        << "snapshot " << i;
  }
  t.stop();
}

TEST(ThreadedDiners, SnapshotInvariantHoldsAfterSettling) {
  // Give the system time to settle, then check I on a consistent cut.
  ThreadedDiners t(graph::make_path(6), {}, {.eat_us = 0, .idle_us = 0});
  t.start();
  ASSERT_TRUE(eventually([&] { return t.total_meals() > 50; }));
  // NC and E must hold on every snapshot of a tree from a clean start.
  for (int i = 0; i < 50; ++i) {
    const auto snap = t.snapshot();
    ASSERT_TRUE(analysis::holds_nc(snap));
    ASSERT_TRUE(analysis::holds_e(snap));
  }
  t.stop();
}

TEST(ThreadedDiners, BenignCrashContainedWithinDistanceTwo) {
  ThreadedDiners t(graph::make_path(8), {}, {.eat_us = 0, .idle_us = 0});
  t.start();
  ASSERT_TRUE(eventually([&] { return t.total_meals() > 20; }));
  t.crash(0);
  // Let the system absorb the crash.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::vector<std::uint64_t> base(8);
  for (P p = 0; p < 8; ++p) base[p] = t.meals(p);
  // Distance >= 3 keeps eating.
  ASSERT_TRUE(eventually([&] {
    for (P p = 3; p < 8; ++p) {
      if (t.meals(p) <= base[p] + 5) return false;
    }
    return true;
  }));
  t.stop();
}

TEST(ThreadedDiners, MaliciousCrashRecovered) {
  ThreadedDiners t(graph::make_ring(8), {}, {.eat_us = 0, .idle_us = 0});
  t.start();
  ASSERT_TRUE(eventually([&] { return t.total_meals() > 20; }));
  t.malicious_crash(2, 64);
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  // After the scribbles are absorbed, safety holds on snapshots and the far
  // side of the ring keeps eating.
  std::vector<std::uint64_t> base(8);
  for (P p = 0; p < 8; ++p) base[p] = t.meals(p);
  ASSERT_TRUE(eventually([&] {
    return t.meals(5) > base[5] + 5 && t.meals(6) > base[6] + 5;
  }));
  for (int i = 0; i < 50; ++i) {
    const auto snap = t.snapshot();
    ASSERT_EQ(analysis::eating_violation_count(snap), 0u);
  }
  // The measured starvation ball on the final snapshot stays within 2.
  const auto snap = t.snapshot();
  const auto dead = snap.dead_processes();
  ASSERT_EQ(dead.size(), 1u);
  t.stop();
}

TEST(ThreadedDiners, RestartRejoinsAfterMaliciousCrash) {
  ThreadedDiners t(graph::make_ring(6), {}, {.eat_us = 0, .idle_us = 0});
  t.start();
  ASSERT_TRUE(eventually([&] { return t.total_meals() > 20; }));
  t.malicious_crash(2, 32);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  {
    const auto snap = t.snapshot();
    ASSERT_FALSE(snap.alive(2));
  }
  const auto base = t.meals(2);
  t.restart(2);
  // The revived thread resumes the protocol and eats again.
  ASSERT_TRUE(eventually([&] { return t.meals(2) > base + 5; }));
  {
    const auto snap = t.snapshot();
    EXPECT_TRUE(snap.alive(2));
  }
  // The rejoin is just a transient fault: safety holds on snapshots once
  // the reset is absorbed.
  for (int i = 0; i < 50; ++i) {
    const auto snap = t.snapshot();
    ASSERT_EQ(analysis::eating_violation_count(snap), 0u);
  }
  t.stop();
}

TEST(ThreadedDiners, RestartOnLiveProcessIsNoOp) {
  ThreadedDiners t(graph::make_path(4), {}, {.eat_us = 0, .idle_us = 0});
  t.start();
  ASSERT_TRUE(eventually([&] { return t.total_meals() > 10; }));
  t.restart(1);  // alive: must not reset or double-start anything
  ASSERT_TRUE(eventually([&] { return t.total_meals() > 20; }));
  const auto snap = t.snapshot();
  EXPECT_TRUE(snap.alive(1));
  t.stop();
}

TEST(ThreadedDiners, StopIsIdempotentAndDestructorSafe) {
  auto t = std::make_unique<ThreadedDiners>(graph::make_path(3));
  t->start();
  t->stop();
  t->stop();
  // Destructor after stop must not hang or double-join.
  t.reset();
  // Destructor without stop must also clean up.
  auto u = std::make_unique<ThreadedDiners>(graph::make_path(3));
  u->start();
  u.reset();
  SUCCEED();
}

TEST(ThreadedDiners, NeedsGateJoining) {
  ThreadedDiners t(graph::make_path(4), {}, {.eat_us = 0, .idle_us = 0});
  for (P p = 0; p < 4; ++p) t.set_needs(p, false);
  t.set_needs(2, true);
  t.start();
  ASSERT_TRUE(eventually([&] { return t.meals(2) > 10; }));
  EXPECT_EQ(t.meals(0), 0u);
  EXPECT_EQ(t.meals(1), 0u);
  EXPECT_EQ(t.meals(3), 0u);
  t.stop();
}

}  // namespace
}  // namespace diners::threads
