#include "util/backoff.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace diners::util {
namespace {

TEST(Backoff, GrowsGeometricallyWithinBounds) {
  BackoffOptions options;
  options.base_us = 100;
  options.cap_us = 1000;
  options.multiplier = 2.0;
  options.jitter = 0.0;  // exact schedule: 100, 200, 400, 800, 1000, 1000...
  options.max_retries = 6;
  Backoff b(options, 1);
  const std::vector<std::uint64_t> expected = {100, 200, 400, 800, 1000, 1000};
  for (const std::uint64_t want : expected) {
    const auto got = b.next_delay_us();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, want);
  }
  EXPECT_FALSE(b.next_delay_us().has_value());  // retries exhausted
  EXPECT_EQ(b.retries(), 6u);
}

TEST(Backoff, JitterOnlyShrinksAndStaysPositive) {
  BackoffOptions options;
  options.base_us = 1000;
  options.cap_us = 100000;
  options.jitter = 0.5;
  options.max_retries = 32;
  Backoff b(options, 7);
  std::uint64_t full = 1000;
  while (const auto d = b.next_delay_us()) {
    // Uniform in [full/2, full]: jitter removes at most half, never adds.
    EXPECT_LE(*d, full);
    EXPECT_GE(*d, full / 2);
    full = std::min<std::uint64_t>(
        static_cast<std::uint64_t>(static_cast<double>(full) *
                                   options.multiplier),
        options.cap_us);
  }
}

TEST(Backoff, DeterministicForSeedAndDecorrelatedAcrossStreams) {
  const BackoffOptions options;
  Backoff a(options, 42, 1);
  Backoff b(options, 42, 1);
  Backoff c(options, 42, 2);
  bool streams_differ = false;
  for (int i = 0; i < 10; ++i) {
    const auto da = a.next_delay_us();
    const auto db = b.next_delay_us();
    const auto dc = c.next_delay_us();
    ASSERT_TRUE(da && db && dc);
    EXPECT_EQ(*da, *db);  // same (seed, stream): identical schedule
    streams_differ |= (*da != *dc);
  }
  EXPECT_TRUE(streams_differ);  // different stream: different jitter
}

TEST(Backoff, ResetForgetsGrowthButNotRandomness) {
  BackoffOptions options;
  options.base_us = 100;
  options.cap_us = 100000;
  options.jitter = 0.0;
  Backoff b(options, 3);
  (void)b.next_delay_us();
  (void)b.next_delay_us();
  const auto grown = b.next_delay_us();
  ASSERT_TRUE(grown.has_value());
  EXPECT_EQ(*grown, 400u);
  b.reset();
  EXPECT_EQ(b.retries(), 0u);
  const auto after = b.next_delay_us();
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(*after, 100u);  // growth restarted from base
}

TEST(Backoff, ZeroMaxRetriesMeansNeverRetry) {
  BackoffOptions options;
  options.max_retries = 0;
  Backoff b(options, 1);
  EXPECT_FALSE(b.next_delay_us().has_value());
}

TEST(Backoff, RejectsInvalidOptions) {
  BackoffOptions shrink;
  shrink.multiplier = 0.5;
  EXPECT_THROW(Backoff(shrink, 1), std::invalid_argument);
  BackoffOptions jitter;
  jitter.jitter = 1.5;
  EXPECT_THROW(Backoff(jitter, 1), std::invalid_argument);
  BackoffOptions cap;
  cap.base_us = 1000;
  cap.cap_us = 10;
  EXPECT_THROW(Backoff(cap, 1), std::invalid_argument);
}

}  // namespace
}  // namespace diners::util
