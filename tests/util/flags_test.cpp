#include "util/flags.hpp"

#include <gtest/gtest.h>

namespace diners::util {
namespace {

Flags standard_flags() {
  Flags f;
  f.define("n", "8", "node count")
      .define("rate", "0.5", "appetite rate")
      .define("verbose", "false", "chatty output")
      .define("daemon", "round-robin", "scheduler");
  return f;
}

TEST(Flags, DefaultsApply) {
  Flags f = standard_flags();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(f.parse(1, argv));
  EXPECT_EQ(f.i64("n"), 8);
  EXPECT_DOUBLE_EQ(f.f64("rate"), 0.5);
  EXPECT_FALSE(f.flag("verbose"));
  EXPECT_EQ(f.str("daemon"), "round-robin");
}

TEST(Flags, ProvidedTracksExplicitFlagsOnly) {
  Flags f = standard_flags();
  const char* argv[] = {"prog", "--n=32", "--verbose"};
  ASSERT_FALSE(f.provided("n"));
  ASSERT_TRUE(f.parse(3, argv));
  EXPECT_TRUE(f.provided("n"));
  EXPECT_TRUE(f.provided("verbose"));
  EXPECT_FALSE(f.provided("rate"));
  EXPECT_FALSE(f.provided("daemon"));
}

TEST(Flags, EqualsSyntax) {
  Flags f = standard_flags();
  const char* argv[] = {"prog", "--n=32", "--daemon=random"};
  ASSERT_TRUE(f.parse(3, argv));
  EXPECT_EQ(f.i64("n"), 32);
  EXPECT_EQ(f.str("daemon"), "random");
}

TEST(Flags, SpaceSyntax) {
  Flags f = standard_flags();
  const char* argv[] = {"prog", "--n", "64"};
  ASSERT_TRUE(f.parse(3, argv));
  EXPECT_EQ(f.i64("n"), 64);
}

TEST(Flags, BareBooleanSetsTrue) {
  Flags f = standard_flags();
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(f.parse(2, argv));
  EXPECT_TRUE(f.flag("verbose"));
}

TEST(Flags, NoPrefixNegates) {
  Flags f;
  f.define("color", "true", "");
  const char* argv[] = {"prog", "--no-color"};
  ASSERT_TRUE(f.parse(2, argv));
  EXPECT_FALSE(f.flag("color"));
}

TEST(Flags, UnknownFlagFails) {
  Flags f = standard_flags();
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_FALSE(f.parse(2, argv));
}

TEST(Flags, HelpReturnsFalse) {
  Flags f = standard_flags();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(f.parse(2, argv));
}

TEST(Flags, PositionalCollected) {
  Flags f = standard_flags();
  const char* argv[] = {"prog", "one", "--n=2", "two"};
  ASSERT_TRUE(f.parse(4, argv));
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "one");
  EXPECT_EQ(f.positional()[1], "two");
}

TEST(Flags, UndefinedLookupThrows) {
  Flags f = standard_flags();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(f.parse(1, argv));
  EXPECT_THROW((void)f.str("nope"), std::out_of_range);
}

TEST(Flags, MissingValueFails) {
  Flags f = standard_flags();
  const char* argv[] = {"prog", "--n"};
  EXPECT_FALSE(f.parse(2, argv));
}

TEST(Flags, NumericAccessorsRejectTrailingGarbage) {
  Flags f = standard_flags();
  const char* argv[] = {"prog", "--n=123abc", "--rate=0.5x"};
  ASSERT_TRUE(f.parse(3, argv));  // lexing succeeds; typed access throws
  EXPECT_THROW((void)f.i64("n"), FlagError);
  EXPECT_THROW((void)f.u64("n"), FlagError);
  EXPECT_THROW((void)f.u32("n"), FlagError);
  EXPECT_THROW((void)f.f64("rate"), FlagError);
}

TEST(Flags, UnsignedAccessorsRejectNegatives) {
  Flags f = standard_flags();
  const char* argv[] = {"prog", "--n=-5"};
  ASSERT_TRUE(f.parse(2, argv));
  EXPECT_THROW((void)f.u64("n"), FlagError);
  EXPECT_THROW((void)f.u32("n"), FlagError);
  EXPECT_EQ(f.i64("n"), -5);  // signed accessor still accepts it
}

TEST(Flags, UnsignedAccessorsRejectOverflow) {
  Flags f = standard_flags();
  const char* argv[] = {"prog", "--n=99999999999999999999999"};
  ASSERT_TRUE(f.parse(2, argv));
  EXPECT_THROW((void)f.u64("n"), FlagError);
  EXPECT_THROW((void)f.u32("n"), FlagError);
}

TEST(Flags, U32RejectsValuesPastItsWidth) {
  Flags f = standard_flags();
  const char* argv[] = {"prog", "--n=4294967296"};  // 2^32
  ASSERT_TRUE(f.parse(2, argv));
  EXPECT_THROW((void)f.u32("n"), FlagError);
  EXPECT_EQ(f.u64("n"), 4294967296u);
}

TEST(Flags, RangedAccessorsNameTheFlagInErrors) {
  Flags f = standard_flags();
  const char* argv[] = {"prog", "--n=0"};
  ASSERT_TRUE(f.parse(2, argv));
  try {
    (void)f.u32("n", 1);
    FAIL() << "expected range violation to throw";
  } catch (const FlagError& err) {
    EXPECT_NE(std::string(err.what()).find("--n"), std::string::npos);
  }
  EXPECT_EQ(f.u32("n", 0), 0u);
}

}  // namespace
}  // namespace diners::util
