#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "util/json_reader.hpp"
#include "util/json_writer.hpp"

namespace {

using diners::util::json_quoted;
using diners::util::JsonValue;
using diners::util::JsonWriter;
using diners::util::parse_json;

TEST(JsonQuoted, EscapesControlAndStructuralCharacters) {
  EXPECT_EQ(json_quoted("plain"), "\"plain\"");
  EXPECT_EQ(json_quoted("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json_quoted("back\\slash"), "\"back\\\\slash\"");
  EXPECT_EQ(json_quoted("line\nbreak"), "\"line\\nbreak\"");
  EXPECT_EQ(json_quoted("tab\there"), "\"tab\\there\"");
  EXPECT_EQ(json_quoted(std::string("nul\0byte", 8)), "\"nul\\u0000byte\"");
  EXPECT_EQ(json_quoted("\x01"), "\"\\u0001\"");
}

TEST(JsonWriter, WritesNestedStructure) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_object()
      .field("name", "ring")
      .field("n", 8)
      .field("ok", true)
      .key("stats")
      .begin_object()
      .field("mean", 2.5)
      .end_object()
      .key("list")
      .begin_array()
      .value(1)
      .value(2)
      .end_array()
      .end_object();
  w.finish();
  const std::string expected =
      "{\n"
      "  \"name\": \"ring\",\n"
      "  \"n\": 8,\n"
      "  \"ok\": true,\n"
      "  \"stats\": {\n"
      "    \"mean\": 2.5\n"
      "  },\n"
      "  \"list\": [\n"
      "    1,\n"
      "    2\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(out.str(), expected);
}

TEST(JsonWriter, FinishClosesOpenContainers) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_object().key("a").begin_array().value(1);
  w.finish();
  EXPECT_NO_THROW((void)parse_json(out.str()));
}

TEST(JsonWriter, EmitsNullForNonFiniteDoubles) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_array()
      .value(std::numeric_limits<double>::infinity())
      .value(std::nan(""))
      .end_array();
  w.finish();
  const JsonValue doc = parse_json(out.str());
  EXPECT_TRUE(doc.as_array()[0].is_null());
  EXPECT_TRUE(doc.as_array()[1].is_null());
}

TEST(JsonWriter, NumbersRoundTripExactly) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_array().value(0.1).value(1e300).value(-42.0).end_array();
  w.finish();
  const JsonValue doc = parse_json(out.str());
  EXPECT_EQ(doc.as_array()[0].as_number(), 0.1);
  EXPECT_EQ(doc.as_array()[1].as_number(), 1e300);
  EXPECT_EQ(doc.as_array()[2].as_number(), -42.0);
}

TEST(JsonReader, ParsesScalarsAndContainers) {
  const JsonValue doc =
      parse_json(R"({"a": [1, 2.5, -3], "b": {"c": null, "d": false},)"
                 R"( "s": "x"})");
  EXPECT_EQ(doc.at("a").as_array().size(), 3u);
  EXPECT_EQ(doc.at("a").as_array()[0].as_number(), 1.0);
  EXPECT_EQ(doc.at("a").as_array()[2].as_number(), -3.0);
  EXPECT_TRUE(doc.at("b").at("c").is_null());
  EXPECT_FALSE(doc.at("b").at("d").as_bool());
  EXPECT_EQ(doc.at("s").as_string(), "x");
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_THROW(doc.at("missing"), std::invalid_argument);
}

TEST(JsonReader, DecodesEscapesIncludingSurrogatePairs) {
  const JsonValue doc = parse_json(R"(["a\"b", "\u0041", "\uD83D\uDE00"])");
  EXPECT_EQ(doc.as_array()[0].as_string(), "a\"b");
  EXPECT_EQ(doc.as_array()[1].as_string(), "A");
  EXPECT_EQ(doc.as_array()[2].as_string(), "\xF0\x9F\x98\x80");
}

TEST(JsonReader, RejectsMalformedDocuments) {
  EXPECT_THROW((void)parse_json(""), std::invalid_argument);
  EXPECT_THROW((void)parse_json("{"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("[1,]"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("{\"a\" 1}"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("[1] trailing"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("[inf]"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("'single'"), std::invalid_argument);
}

TEST(JsonReader, RejectsRunawayNesting) {
  std::string deep(128, '[');
  deep += std::string(128, ']');
  EXPECT_THROW((void)parse_json(deep), std::invalid_argument);
}

TEST(JsonRoundTrip, WriterOutputParsesBackEqual) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_object()
      .field("label", "quote\" and \\ and\nnewline")
      .field("value", 123.456)
      .key("params")
      .begin_object()
      .field("topology", "ring")
      .end_object()
      .end_object();
  w.finish();
  const JsonValue doc = parse_json(out.str());
  EXPECT_EQ(doc.at("label").as_string(), "quote\" and \\ and\nnewline");
  EXPECT_EQ(doc.at("value").as_number(), 123.456);
  EXPECT_EQ(doc.at("params").at("topology").as_string(), "ring");
}

}  // namespace
