#include "util/log.hpp"

#include <gtest/gtest.h>

namespace diners::util {
namespace {

TEST(Log, LevelRoundTrips) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  set_log_level(before);
}

TEST(Log, OffSuppressesEverything) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kOff);
  testing::internal::CaptureStderr();
  DINERS_LOG_INFO << "should not appear";
  log_line(LogLevel::kError, "nor this");
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
  set_log_level(before);
}

TEST(Log, EmitsAtOrAboveThreshold) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  DINERS_LOG_DEBUG << "hidden";
  DINERS_LOG_INFO << "visible " << 42;
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  EXPECT_NE(out.find("[INFO] visible 42"), std::string::npos);
  set_log_level(before);
}

}  // namespace
}  // namespace diners::util
