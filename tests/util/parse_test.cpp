#include "util/parse.hpp"

#include <cstdint>
#include <limits>
#include <stdexcept>

#include <gtest/gtest.h>

namespace {

using diners::util::parse_f64;
using diners::util::parse_i64;
using diners::util::parse_u64;

constexpr auto kU64Max = std::numeric_limits<std::uint64_t>::max();

TEST(ParseU64, AcceptsPlainDecimals) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("42"), 42u);
  EXPECT_EQ(parse_u64("18446744073709551615"), kU64Max);
}

TEST(ParseU64, RejectsTrailingGarbage) {
  EXPECT_THROW((void)parse_u64("123abc"), std::invalid_argument);
  EXPECT_THROW((void)parse_u64("12 "), std::invalid_argument);
  EXPECT_THROW((void)parse_u64(" 12"), std::invalid_argument);
  EXPECT_THROW((void)parse_u64("1.5"), std::invalid_argument);
}

TEST(ParseU64, RejectsEmptyAndNonNumeric) {
  EXPECT_THROW((void)parse_u64(""), std::invalid_argument);
  EXPECT_THROW((void)parse_u64("seven"), std::invalid_argument);
  EXPECT_THROW((void)parse_u64("+3"), std::invalid_argument);
}

TEST(ParseU64, RejectsNegativesInsteadOfWrapping) {
  // std::stoull would wrap "-5" to 2^64-5 silently.
  EXPECT_THROW((void)parse_u64("-5"), std::invalid_argument);
  EXPECT_THROW((void)parse_u64("-0"), std::invalid_argument);
}

TEST(ParseU64, RejectsOverflowInsteadOfAborting) {
  // std::stoull throws out_of_range, which tools never caught (abort).
  EXPECT_THROW((void)parse_u64("99999999999999999999999"), std::invalid_argument);
  EXPECT_THROW((void)parse_u64("18446744073709551616"), std::invalid_argument);
}

TEST(ParseU64, RangedVariantEnforcesBoundsAndNamesTheFlag) {
  EXPECT_EQ(parse_u64("7", 1, 10, "--n"), 7u);
  EXPECT_EQ(parse_u64("1", 1, 10, "--n"), 1u);
  EXPECT_EQ(parse_u64("10", 1, 10, "--n"), 10u);
  try {
    (void)parse_u64("11", 1, 10, "--n");
    FAIL() << "expected out-of-range to throw";
  } catch (const std::invalid_argument& err) {
    EXPECT_NE(std::string(err.what()).find("--n"), std::string::npos);
    EXPECT_NE(std::string(err.what()).find("[1, 10]"), std::string::npos);
  }
  EXPECT_THROW((void)parse_u64("0", 1, 10, "--n"), std::invalid_argument);
}

TEST(ParseI64, AcceptsSignedDecimals) {
  EXPECT_EQ(parse_i64("-5"), -5);
  EXPECT_EQ(parse_i64("0"), 0);
  EXPECT_EQ(parse_i64("9223372036854775807"),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(parse_i64("-9223372036854775808"),
            std::numeric_limits<std::int64_t>::min());
}

TEST(ParseI64, RejectsGarbageAndOverflow) {
  EXPECT_THROW((void)parse_i64("123abc"), std::invalid_argument);
  EXPECT_THROW((void)parse_i64(""), std::invalid_argument);
  EXPECT_THROW((void)parse_i64("9223372036854775808"), std::invalid_argument);
  EXPECT_THROW((void)parse_i64("--3"), std::invalid_argument);
}

TEST(ParseF64, AcceptsDecimalsAndExponents) {
  EXPECT_DOUBLE_EQ(parse_f64("0.25"), 0.25);
  EXPECT_DOUBLE_EQ(parse_f64("-1.5e3"), -1500.0);
  EXPECT_DOUBLE_EQ(parse_f64("3"), 3.0);
  EXPECT_DOUBLE_EQ(parse_f64(".5"), 0.5);
  EXPECT_DOUBLE_EQ(parse_f64("-.5"), -0.5);
}

TEST(ParseF64, RejectsGarbageAndNonFiniteSpellings) {
  EXPECT_THROW((void)parse_f64("0.5x"), std::invalid_argument);
  EXPECT_THROW((void)parse_f64(""), std::invalid_argument);
  EXPECT_THROW((void)parse_f64("inf"), std::invalid_argument);
  EXPECT_THROW((void)parse_f64("nan"), std::invalid_argument);
  EXPECT_THROW((void)parse_f64("-"), std::invalid_argument);
  EXPECT_THROW((void)parse_f64("."), std::invalid_argument);
}

}  // namespace
