#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace diners::util {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(SplitMix64, KnownVector) {
  // Reference values for seed 0 from the public-domain reference code.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
}

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, BelowStaysInRange) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Xoshiro256, BelowZeroIsZero) {
  Xoshiro256 rng(3);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Xoshiro256, BelowOneIsZero) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro256, BelowCoversAllResidues) {
  Xoshiro256 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Xoshiro256, BetweenInclusiveBounds) {
  Xoshiro256 rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Xoshiro256, BetweenSingleton) {
  Xoshiro256 rng(5);
  EXPECT_EQ(rng.between(9, 9), 9);
}

TEST(Xoshiro256, BetweenThrowsOnInvertedBounds) {
  Xoshiro256 rng(5);
  EXPECT_THROW((void)rng.between(2, 1), std::invalid_argument);
}

TEST(Xoshiro256, ChanceExtremes) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Xoshiro256, ChanceRoughlyCalibrated) {
  Xoshiro256 rng(13);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.02);
}

TEST(Xoshiro256, UnitInHalfOpenInterval) {
  Xoshiro256 rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, ShufflePreservesMultiset) {
  Xoshiro256 rng(23);
  std::vector<int> xs = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = xs;
  rng.shuffle(std::span<int>(xs));
  std::sort(xs.begin(), xs.end());
  EXPECT_EQ(xs, sorted);
}

TEST(Xoshiro256, ShuffleActuallyPermutes) {
  Xoshiro256 rng(23);
  std::vector<int> xs(64);
  for (int i = 0; i < 64; ++i) xs[i] = i;
  const auto original = xs;
  rng.shuffle(std::span<int>(xs));
  EXPECT_NE(xs, original);  // astronomically unlikely to be identity
}

TEST(Xoshiro256, SampleIndicesDistinctAndInRange) {
  Xoshiro256 rng(29);
  const auto idx = rng.sample_indices(50, 20);
  ASSERT_EQ(idx.size(), 20u);
  std::set<std::size_t> uniq(idx.begin(), idx.end());
  EXPECT_EQ(uniq.size(), 20u);
  for (auto i : idx) EXPECT_LT(i, 50u);
}

TEST(Xoshiro256, SampleIndicesFullPopulation) {
  Xoshiro256 rng(29);
  const auto idx = rng.sample_indices(5, 5);
  std::set<std::size_t> uniq(idx.begin(), idx.end());
  EXPECT_EQ(uniq.size(), 5u);
}

TEST(Xoshiro256, SampleIndicesThrowsWhenKExceedsN) {
  Xoshiro256 rng(29);
  EXPECT_THROW((void)rng.sample_indices(3, 4), std::invalid_argument);
}

TEST(DeriveSeed, StreamsAreIndependent) {
  EXPECT_NE(derive_seed(1, 0), derive_seed(1, 1));
  EXPECT_NE(derive_seed(1, 0), derive_seed(2, 0));
  EXPECT_EQ(derive_seed(1, 0), derive_seed(1, 0));
}

// The batch runner seeds trial i with derive_seed(master, i). Adjacent
// trial indices differ in one low bit, so this guards against a weak
// derivation where neighboring trials would replay overlapping or equal
// RNG streams (the failure mode of the old `seed = base + run` scheme,
// where generators seeded 1000, 1001, ... share most of their seed bits).
TEST(DeriveSeed, AdjacentTrialStreamPrefixesDoNotCollide) {
  constexpr std::uint64_t kMaster = 1000;
  constexpr int kTrials = 64;
  constexpr int kPrefix = 32;

  std::vector<std::vector<std::uint64_t>> prefixes;
  for (int t = 0; t < kTrials; ++t) {
    Xoshiro256 rng(derive_seed(kMaster, static_cast<std::uint64_t>(t)));
    std::vector<std::uint64_t> prefix(kPrefix);
    for (auto& x : prefix) x = rng.next();
    prefixes.push_back(std::move(prefix));
  }

  std::set<std::uint64_t> all_draws;
  for (int t = 0; t < kTrials; ++t) {
    // No adjacent pair shares a prefix (checked element-wise so a shifted /
    // overlapping replay would also be caught).
    if (t + 1 < kTrials) {
      for (int k = 0; k < kPrefix; ++k) {
        EXPECT_NE(prefixes[t][k], prefixes[t + 1][k])
            << "trials " << t << "," << t + 1 << " draw " << k;
      }
    }
    for (auto x : prefixes[t]) all_draws.insert(x);
  }
  // Stronger: across all trials, every 64-bit draw is distinct (a birthday
  // collision among 2048 draws is ~2^-43, so a hit means real correlation).
  EXPECT_EQ(all_draws.size(),
            static_cast<std::size_t>(kTrials) * kPrefix);
}

TEST(DeriveSeed, TrialSeedsPairwiseDistinct) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t t = 0; t < 4096; ++t) seeds.insert(derive_seed(7, t));
  EXPECT_EQ(seeds.size(), 4096u);
}

}  // namespace
}  // namespace diners::util
