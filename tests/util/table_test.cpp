#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace diners::util {
namespace {

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({std::string("x")}), std::invalid_argument);
}

TEST(Table, StoresRows) {
  Table t({"n", "steps"});
  t.add_row({std::int64_t{8}, 12.5}).add_row({std::int64_t{16}, 40.25});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(std::get<std::int64_t>(t.row(0)[0]), 8);
}

TEST(Table, PrintAlignsColumns) {
  Table t({"name", "value"});
  t.add_row({std::string("x"), std::int64_t{1}});
  t.add_row({std::string("longer"), std::int64_t{123456}});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("123456"), std::string::npos);
  // Header + rule + 2 rows = 4 lines.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, PrintCsv) {
  Table t({"a", "b"}, 2);
  t.add_row({std::int64_t{1}, 0.5});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,0.50\n");
}

TEST(Table, DoublePrecisionRespected) {
  Table t({"v"}, 1);
  t.add_row({3.14159});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "v\n3.1\n");
}

TEST(Fixed, FormatsWithPrecision) {
  EXPECT_EQ(fixed(1.0, 2), "1.00");
  EXPECT_EQ(fixed(2.345, 1), "2.3");
}

}  // namespace
}  // namespace diners::util
