#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace diners::util {
namespace {

TEST(TrialPool, ZeroJobsRejected) {
  EXPECT_THROW(TrialPool(0), std::invalid_argument);
}

TEST(TrialPool, JobsReported) {
  EXPECT_EQ(TrialPool(1).jobs(), 1u);
  EXPECT_EQ(TrialPool(5).jobs(), 5u);
}

TEST(TrialPool, HardwareJobsPositive) {
  EXPECT_GE(TrialPool::hardware_jobs(), 1u);
}

TEST(TrialPool, ZeroItemsIsNoop) {
  TrialPool pool(4);
  std::atomic<int> calls{0};
  pool.run(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

// Every index in [0, count) is visited exactly once, for every jobs/count
// relation (jobs > count, jobs == count, jobs < count, serial).
TEST(TrialPool, EachIndexVisitedExactlyOnce) {
  for (unsigned jobs : {1u, 2u, 4u, 9u}) {
    for (std::size_t count : {0u, 1u, 3u, 8u, 100u}) {
      TrialPool pool(jobs);
      std::vector<std::atomic<int>> visits(count);
      pool.run(count, [&](std::size_t i) { ++visits[i]; });
      for (std::size_t i = 0; i < count; ++i) {
        EXPECT_EQ(visits[i].load(), 1)
            << "jobs=" << jobs << " count=" << count << " i=" << i;
      }
    }
  }
}

// Per-index output slots make results independent of scheduling: the sum
// collected through slots equals the serial sum for any worker count.
TEST(TrialPool, SlotOutputsDeterministic) {
  const std::size_t count = 257;
  std::vector<long> expected(count);
  for (std::size_t i = 0; i < count; ++i) {
    expected[i] = static_cast<long>(i * i);
  }
  for (unsigned jobs : {1u, 3u, 8u}) {
    std::vector<long> out(count, -1);
    TrialPool pool(jobs);
    pool.run(count, [&](std::size_t i) {
      out[i] = static_cast<long>(i * i);
    });
    EXPECT_EQ(out, expected) << "jobs=" << jobs;
  }
}

// A throwing item does not hang the pool, the exception is rethrown to the
// caller after the batch joins, and only the throwing shard abandons its
// remaining items — the other shards complete.
TEST(TrialPool, ExceptionPropagatesAfterBatch) {
  TrialPool pool(4);
  std::atomic<int> calls{0};
  try {
    pool.run(16, [&](std::size_t i) {
      ++calls;
      if (i == 5) throw std::runtime_error("trial 5 failed");
    });
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& err) {
    EXPECT_STREQ(err.what(), "trial 5 failed");
  }
  // Item 5 sits in shard 1 (items 1, 5, 9, 13): after the throw that shard
  // skips 9 and 13, while the other three shards run all 12 of theirs.
  EXPECT_EQ(calls.load(), 14);

  // The pool is reusable after a failed batch.
  std::atomic<int> second{0};
  pool.run(8, [&](std::size_t) { ++second; });
  EXPECT_EQ(second.load(), 8);
}

TEST(TrialPool, CallerThreadParticipates) {
  // With jobs=1 the work must run on the calling thread (no spawn), which
  // keeps serial runs deterministic and cheap.
  TrialPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(4);
  pool.run(4, [&](std::size_t i) { seen[i] = std::this_thread::get_id(); });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

}  // namespace
}  // namespace diners::util
