#include "verify/canonical.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "core/diners_system.hpp"
#include "fault/injector.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace diners::verify {
namespace {

using core::DinerState;
using core::DinersSystem;
using P = DinersSystem::ProcessId;

TEST(StateCodec, RejectsBadBoxAndOversizedInstances) {
  EXPECT_THROW(StateCodec(graph::make_ring(4), 3, 2), std::invalid_argument);
  // 24 processes x (2 + depth bits) + 24 edges > 128 bits.
  EXPECT_THROW(StateCodec(graph::make_ring(24), 0, 127),
               std::invalid_argument);
}

TEST(StateCodec, EncodeDecodeRoundTripsRandomStates) {
  DinersSystem s(graph::make_connected_gnp(6, 0.4, 7));
  const StateCodec codec(s.topology(), 0, 6);
  util::Xoshiro256 rng(11);
  fault::CorruptionOptions box;
  box.depth_slack = 0;  // keep depths inside the codec box
  for (int trial = 0; trial < 200; ++trial) {
    fault::corrupt_global_state(s, rng, box);
    const Key k = codec.encode(s);
    DinersSystem t(s.topology());
    codec.decode(k, t);
    for (P p = 0; p < 6; ++p) {
      EXPECT_EQ(t.state(p), s.state(p));
      EXPECT_EQ(t.depth(p), s.depth(p));
    }
    for (const auto& edge : s.topology().edges()) {
      EXPECT_EQ(t.priority(edge.u, edge.v), s.priority(edge.u, edge.v));
    }
    EXPECT_EQ(codec.encode(t), k);
  }
}

TEST(StateCodec, FieldReadersMatchTheSystem) {
  DinersSystem s(graph::make_star(5));
  const StateCodec codec(s.topology(), -1, 5);
  s.set_state(2, DinerState::kEating);
  s.set_depth(2, -1);
  s.set_depth(0, 5);
  s.set_priority(0, 3, 3);
  const Key k = codec.encode(s);
  EXPECT_EQ(codec.state_of(k, 2), DinerState::kEating);
  EXPECT_EQ(codec.depth_of(k, 2), -1);
  EXPECT_EQ(codec.depth_of(k, 0), 5);
  EXPECT_EQ(codec.edge_owner(k, s.topology().edge_index(0, 3)), 3u);
}

TEST(StateCodec, DepthsSaturateIntoTheBox) {
  DinersSystem s(graph::make_path(3));
  const StateCodec codec(s.topology(), 0, 3);
  s.set_depth(1, 99);
  s.set_depth(2, -7);
  const Key k = codec.encode(s);
  EXPECT_EQ(codec.depth_of(k, 1), 3);
  EXPECT_EQ(codec.depth_of(k, 2), 0);
}

TEST(StateCodec, DomainEnumerationIsABijection) {
  // path-3, depths {0,1}: 3^3 * 2^3 * 2^2 = 864 distinct keys, each
  // round-tripping through decode/encode.
  DinersSystem s(graph::make_path(3));
  const StateCodec codec(s.topology(), 0, 1);
  ASSERT_EQ(codec.domain_size(), 864u);
  std::unordered_set<Key, KeyHash> seen;
  for (std::uint64_t i = 0; i < codec.domain_size(); ++i) {
    const Key k = codec.domain_key(i);
    EXPECT_TRUE(seen.insert(k).second) << "duplicate domain key at " << i;
    codec.decode(k, s);
    EXPECT_EQ(codec.encode(s), k);
  }
}

TEST(StateCodec, ProcessMaskCoversExactlyTheOwnedBits) {
  DinersSystem s(graph::make_ring(4));
  const StateCodec codec(s.topology(), 0, 3);
  // Flipping everything p owns changes only bits inside process_mask(p).
  const Key base = codec.encode(s);
  s.set_state(1, DinerState::kEating);
  s.set_depth(1, 3);
  for (P q : s.topology().neighbors(1)) s.set_priority(1, q, 1);
  const Key changed = codec.encode(s);
  const Key diff{base.lo ^ changed.lo, base.hi ^ changed.hi};
  const Key mask = codec.process_mask(1);
  EXPECT_EQ(key_andnot(diff, mask), (Key{0, 0}));
  // And the mask is wide enough to hold every crash assignment.
  EXPECT_EQ(fault::num_crash_assignments(s, 1, 0, 3), 3u * 4u * 4u);
}

TEST(StateCodec, CrashAssignmentsEnumerateEveryVictimAssignment) {
  DinersSystem s(graph::make_path(3));
  const StateCodec codec(s.topology(), 0, 2);
  const auto total = fault::num_crash_assignments(s, 1, 0, 2);
  ASSERT_EQ(total, 3u * 3u * 4u);  // 3 states x 3 depths x 2 edges
  std::unordered_set<Key, KeyHash> patterns;
  for (std::uint64_t i = 0; i < total; ++i) {
    fault::apply_crash_assignment(s, 1, i, 0, 2);
    patterns.insert(key_and(codec.encode(s), codec.process_mask(1)));
  }
  EXPECT_EQ(patterns.size(), total);
}

}  // namespace
}  // namespace diners::verify
