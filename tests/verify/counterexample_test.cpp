#include "verify/counterexample.hpp"

#include <gtest/gtest.h>

#include <span>
#include <sstream>

#include "analysis/invariants.hpp"
#include "core/serialize.hpp"
#include "graph/generators.hpp"
#include "verify/properties.hpp"

namespace diners::verify {
namespace {

using core::DinerState;
using core::DinersConfig;
using core::DinersSystem;
using P = DinersSystem::ProcessId;

DinersSystem hungry_system(graph::Graph g, DinersConfig cfg = {}) {
  DinersSystem s(std::move(g), cfg);
  for (P p = 0; p < s.topology().num_nodes(); ++p) s.set_needs(p, true);
  return s;
}

TEST(CexIo, RoundTripsEveryEventKindAndTheCycleMarker) {
  DinersSystem s = hungry_system(graph::make_path(3));
  s.set_state(2, DinerState::kEating);
  s.set_depth(0, -2);

  Counterexample cex;
  cex.property = "closure";
  cex.detail = "hand-built witness with crash and writes";
  cex.start = core::capture(s);
  CexEvent act;
  act.kind = CexEvent::Kind::kAction;
  act.process = 0;
  act.action = DinersSystem::kJoin;
  CexEvent crash;
  crash.kind = CexEvent::Kind::kCrash;
  crash.process = 1;
  CexEvent write;
  write.kind = CexEvent::Kind::kWrite;
  write.process = 1;
  write.wstate = DinerState::kEating;
  write.wdepth = -1;
  write.wowners = {1, 2};  // one owner per incident edge of process 1
  CexEvent cycle_step;
  cycle_step.kind = CexEvent::Kind::kAction;
  cycle_step.process = 2;
  cycle_step.action = DinersSystem::kExit;
  cex.events = {act, crash, write, cycle_step};
  cex.stem_length = 3;

  std::stringstream ss;
  write_counterexample(ss, s.topology(), s.config(), cex);
  const LoadedCounterexample loaded = read_counterexample(ss);

  EXPECT_EQ(loaded.graph.num_nodes(), 3u);
  EXPECT_EQ(loaded.graph.num_edges(), 2u);
  EXPECT_EQ(loaded.cex.property, cex.property);
  EXPECT_EQ(loaded.cex.detail, cex.detail);
  EXPECT_EQ(loaded.cex.start, cex.start);
  EXPECT_EQ(loaded.cex.events, cex.events);
  EXPECT_EQ(loaded.cex.stem_length, 3u);
}

TEST(CexIo, MalformedInputsThrowWithTheOffendingLine) {
  const auto parse = [](const std::string& text) {
    std::stringstream ss(text);
    return read_counterexample(ss);
  };
  EXPECT_THROW(parse(""), std::invalid_argument);
  EXPECT_THROW(parse("not-a-counterexample"), std::invalid_argument);
  // A valid prefix with a truncated event section.
  DinersSystem s = hungry_system(graph::make_path(3));
  Counterexample cex;
  cex.property = "closure";
  cex.start = core::capture(s);
  CexEvent act;
  act.process = 0;
  act.action = DinersSystem::kJoin;
  cex.events = {act};
  cex.stem_length = 1;
  std::stringstream ss;
  write_counterexample(ss, s.topology(), s.config(), cex);
  std::string text = ss.str();
  text.resize(text.rfind("action"));
  EXPECT_THROW(parse(text), std::invalid_argument);
}

TEST(CexStem, DemonicParentMovesRenderAsVictimWrites) {
  DinersSystem scratch = hungry_system(graph::make_path(3));
  scratch.crash(1);
  const StateCodec codec(scratch.topology(), 0, 3);
  Explorer::Options opts;
  opts.demon_victim = 1;
  Explorer explorer(scratch, codec, opts);
  const Key seed = codec.encode(scratch);
  const StateGraph g = explorer.explore(std::span<const Key>(&seed, 1));
  ASSERT_TRUE(g.complete);

  bool saw_write = false;
  for (std::uint32_t i = 0; i < g.num_states(); ++i) {
    if (g.parent_move[i] < kDemonMoveBase || g.parent_move[i] == kSeedMove) {
      continue;
    }
    const Stem stem = stem_to(g, codec, 1, i);
    EXPECT_EQ(stem.seed, 0u);
    ASSERT_FALSE(stem.events.empty());
    const CexEvent& last = stem.events.back();
    EXPECT_EQ(last.kind, CexEvent::Kind::kWrite);
    EXPECT_EQ(last.process, 1u);
    EXPECT_EQ(last.wowners.size(),
              scratch.topology().incident_edges(1).size());
    // The rendered write matches the state's own victim fields.
    EXPECT_EQ(last.wstate, codec.state_of(g.keys[i], 1));
    EXPECT_EQ(last.wdepth, codec.depth_of(g.keys[i], 1));
    saw_write = true;
  }
  EXPECT_TRUE(saw_write);
}

TEST(CexReplay, ComposedConvergenceCycleReplaysAndCloses) {
  // End-to-end: find the no-fixdepth convergence cycle on K3, compose a
  // stem + cycle counterexample, write/read it, and replay it on the real
  // (unmutated) program — every event must be legal (the mutation only
  // removes transitions) and the cycle must close.
  DinersConfig cfg;
  cfg.diameter_override = 2;
  DinersSystem scratch = hungry_system(graph::make_complete(3), cfg);
  const StateCodec codec(scratch.topology(), 0, 3);
  Explorer::Options opts;
  opts.mutation = GuardMutation::kNoFixdepth;
  Explorer explorer(scratch, codec, opts);
  std::vector<Key> seeds;
  for (std::uint64_t i = 0; i < codec.domain_size(); ++i) {
    seeds.push_back(codec.domain_key(i));
  }
  const StateGraph g = explorer.explore(seeds);
  ASSERT_TRUE(g.complete);

  const auto inv = label_invariant(g, codec, scratch);
  const auto v = check_convergence(g, inv);
  ASSERT_TRUE(v.has_value());
  ASSERT_EQ(v->kind, Violation::Kind::kCycle);

  Counterexample cex;
  cex.property = v->property;
  cex.detail = v->detail;
  const Stem stem = stem_to(g, codec, std::nullopt, v->state);
  codec.decode(g.keys[stem.seed], scratch);
  cex.start = core::capture(scratch);
  cex.events = stem.events;
  cex.stem_length = cex.events.size();
  const auto cycle_events = arcs_to_events(v->cycle);
  cex.events.insert(cex.events.end(), cycle_events.begin(),
                    cycle_events.end());

  std::stringstream ss;
  write_counterexample(ss, scratch.topology(), scratch.config(), cex);
  const LoadedCounterexample loaded = read_counterexample(ss);

  DinersSystem replay_system(loaded.graph, loaded.config);
  core::restore(replay_system, loaded.cex.start);
  const CexReplayResult result =
      replay_counterexample(replay_system, loaded.cex);
  EXPECT_TRUE(result.legal) << result.reason;
  EXPECT_TRUE(result.cycle_closes);
  EXPECT_FALSE(result.invariant_at_end);
}

TEST(CexReplay, DisabledActionIsReportedIllegalAtItsIndex) {
  DinersSystem s = hungry_system(graph::make_path(3));
  Counterexample cex;
  cex.property = "closure";
  cex.start = core::capture(s);
  CexEvent join;
  join.process = 0;
  join.action = DinersSystem::kJoin;
  CexEvent bogus;  // exit while thinking: never enabled
  bogus.process = 2;
  bogus.action = DinersSystem::kExit;
  cex.events = {join, bogus};
  cex.stem_length = 2;

  DinersSystem replay_system = core::clone(s);
  const CexReplayResult result = replay_counterexample(replay_system, cex);
  EXPECT_FALSE(result.legal);
  EXPECT_EQ(result.failed_index, 1u);
  EXPECT_FALSE(result.reason.empty());
}

}  // namespace
}  // namespace diners::verify
