// The parallel explorer's determinism contract: the StateGraph is
// bit-identical for every Options::jobs value — same keys in the same
// discovery order, same BFS tree, same enabled masks and CSR arcs, same
// layer count, same truncation point. The canonical merge order (ascending
// parent state index, then ascending move) is what a serial BFS produces,
// so jobs = 1 is the reference and every other jobs value must reproduce
// it exactly.
#include "verify/explorer.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/figure2.hpp"
#include "graph/generators.hpp"

namespace diners::verify {
namespace {

using core::DinersSystem;
using P = DinersSystem::ProcessId;

void expect_graphs_identical(const StateGraph& a, const StateGraph& b) {
  ASSERT_EQ(a.num_states(), b.num_states());
  EXPECT_EQ(a.num_seeds, b.num_seeds);
  EXPECT_EQ(a.num_expanded, b.num_expanded);
  EXPECT_EQ(a.layers, b.layers);
  EXPECT_EQ(a.complete, b.complete);
  for (std::uint32_t i = 0; i < a.num_states(); ++i) {
    ASSERT_EQ(a.keys[i].lo, b.keys[i].lo) << "state " << i;
    ASSERT_EQ(a.keys[i].hi, b.keys[i].hi) << "state " << i;
    ASSERT_EQ(a.parent[i], b.parent[i]) << "state " << i;
    ASSERT_EQ(a.parent_move[i], b.parent_move[i]) << "state " << i;
  }
  ASSERT_EQ(a.enabled, b.enabled);
  ASSERT_EQ(a.succ_begin, b.succ_begin);
  ASSERT_EQ(a.succ.size(), b.succ.size());
  for (std::size_t i = 0; i < a.succ.size(); ++i) {
    ASSERT_EQ(a.succ[i].to, b.succ[i].to) << "arc " << i;
    ASSERT_EQ(a.succ[i].move, b.succ[i].move) << "arc " << i;
  }
}

/// Explores `seeds` at jobs 1, 4 and 8 and requires all three graphs to be
/// bit-identical. Returns the jobs = 1 reference graph.
StateGraph explore_all_jobs(DinersSystem& scratch, const StateCodec& codec,
                            Explorer::Options base,
                            std::span<const Key> seeds) {
  std::optional<StateGraph> ref;
  for (const unsigned jobs : {1u, 4u, 8u}) {
    Explorer::Options opts = base;
    opts.jobs = jobs;
    Explorer explorer(scratch, codec, opts);
    StateGraph g = explorer.explore(seeds);
    if (!ref) {
      ref = std::move(g);
      continue;
    }
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    expect_graphs_identical(*ref, g);
  }
  return std::move(*ref);
}

constexpr GuardMutation kAllMutations[] = {
    GuardMutation::kNone, GuardMutation::kNoFixdepth,
    GuardMutation::kGreedyEnter};

TEST(ExplorerDeterminism, SmallTopologiesAllMutationsBothModes) {
  const struct {
    const char* name;
    graph::Graph topo;
  } cases[] = {
      {"ring4", graph::make_ring(4)},
      {"line4", graph::make_path(4)},
      {"star4", graph::make_star(4)},
  };
  for (const auto& c : cases) {
    for (const auto mutation : kAllMutations) {
      for (const bool demonic : {false, true}) {
        SCOPED_TRACE(std::string(c.name) +
                     " mutation=" + std::to_string(static_cast<int>(mutation)) +
                     " demonic=" + std::to_string(demonic));
        DinersSystem scratch{graph::Graph(c.topo)};
        for (P p = 0; p < scratch.topology().num_nodes(); ++p) {
          scratch.set_needs(p, true);
        }
        if (demonic) scratch.crash(1);
        const StateCodec codec(scratch.topology(), 0, 4);
        Explorer::Options opts;
        opts.mutation = mutation;
        if (demonic) opts.demon_victim = 1;
        const Key seed = codec.encode(scratch);
        const StateGraph g = explore_all_jobs(
            scratch, codec, opts, std::span<const Key>(&seed, 1));
        ASSERT_TRUE(g.complete);
        EXPECT_GT(g.num_states(), 50u);
      }
    }
  }
}

TEST(ExplorerDeterminism, BoxSeededRing4) {
  // Box seeding stresses the seed-admission path: every domain key is a
  // seed, layer 0 is the whole graph.
  DinersSystem scratch(graph::make_ring(4));
  for (P p = 0; p < 4; ++p) scratch.set_needs(p, true);
  const StateCodec codec(scratch.topology(), 0, 1);
  std::vector<Key> seeds;
  seeds.reserve(codec.domain_size());
  for (std::uint64_t i = 0; i < codec.domain_size(); ++i) {
    seeds.push_back(codec.domain_key(i));
  }
  const StateGraph g =
      explore_all_jobs(scratch, codec, Explorer::Options{}, seeds);
  ASSERT_TRUE(g.complete);
  EXPECT_EQ(g.num_seeds, codec.domain_size());
  EXPECT_EQ(g.layers, 0u);
}

TEST(ExplorerDeterminism, Figure2AllMutationsBothModesTruncated) {
  // The paper's Figure 2 instance — large enough for several chunks per
  // layer — capped at max_states, which also pins down that the *exact*
  // truncation point (which candidate is dropped, in canonical merge
  // order) is jobs-invariant.
  for (const auto mutation : kAllMutations) {
    for (const bool demonic : {false, true}) {
      SCOPED_TRACE("mutation=" + std::to_string(static_cast<int>(mutation)) +
                   " demonic=" + std::to_string(demonic));
      DinersSystem scratch = core::make_figure2_system();
      if (demonic) scratch.crash(3);
      const StateCodec codec(
          scratch.topology(), 0,
          static_cast<std::int64_t>(scratch.topology().num_nodes()));
      Explorer::Options opts;
      opts.mutation = mutation;
      opts.max_states = 150'000;
      if (demonic) opts.demon_victim = 3;
      const Key seed = codec.encode(scratch);
      const StateGraph g = explore_all_jobs(
          scratch, codec, opts, std::span<const Key>(&seed, 1));
      // Some mutated/crashed combinations confine the reachable set below
      // the cap; whenever the cap fires, it is exact.
      if (!g.complete) {
        EXPECT_EQ(g.num_states(), 150'000u);
      }
      if (mutation == GuardMutation::kNone && !demonic) {
        EXPECT_FALSE(g.complete);
      }
    }
  }
}

}  // namespace
}  // namespace diners::verify
