#include "verify/explorer.hpp"

#include <gtest/gtest.h>

#include <span>
#include <stdexcept>
#include <string>
#include <unordered_set>

#include "analysis/invariants.hpp"
#include "core/serialize.hpp"
#include "fault/injector.hpp"
#include "graph/generators.hpp"
#include "verify/properties.hpp"

namespace diners::verify {
namespace {

using core::DinersConfig;
using core::DinersSystem;
using P = DinersSystem::ProcessId;

DinersSystem hungry_system(graph::Graph g, DinersConfig cfg = {}) {
  DinersSystem s(std::move(g), cfg);
  for (P p = 0; p < s.topology().num_nodes(); ++p) s.set_needs(p, true);
  return s;
}

std::vector<Key> box_seeds(const StateCodec& codec) {
  std::vector<Key> seeds;
  seeds.reserve(codec.domain_size());
  for (std::uint64_t i = 0; i < codec.domain_size(); ++i) {
    seeds.push_back(codec.domain_key(i));
  }
  return seeds;
}

void expect_graphs_identical(const StateGraph& a, const StateGraph& b) {
  ASSERT_EQ(a.num_states(), b.num_states());
  EXPECT_EQ(a.num_seeds, b.num_seeds);
  EXPECT_EQ(a.num_expanded, b.num_expanded);
  EXPECT_EQ(a.layers, b.layers);
  EXPECT_EQ(a.complete, b.complete);
  for (std::uint32_t i = 0; i < a.num_states(); ++i) {
    ASSERT_EQ(a.keys[i].lo, b.keys[i].lo) << "state " << i;
    ASSERT_EQ(a.keys[i].hi, b.keys[i].hi) << "state " << i;
    ASSERT_EQ(a.parent[i], b.parent[i]) << "state " << i;
    ASSERT_EQ(a.parent_move[i], b.parent_move[i]) << "state " << i;
  }
  ASSERT_EQ(a.enabled, b.enabled);
  ASSERT_EQ(a.succ_begin, b.succ_begin);
  ASSERT_EQ(a.succ.size(), b.succ.size());
  for (std::size_t i = 0; i < a.succ.size(); ++i) {
    ASSERT_EQ(a.succ[i].to, b.succ[i].to) << "arc " << i;
    ASSERT_EQ(a.succ[i].move, b.succ[i].move) << "arc " << i;
  }
}

TEST(Explorer, InstanceSeededPath3HasConsistentBfsTree) {
  DinersSystem scratch = hungry_system(graph::make_path(3));
  const StateCodec codec(scratch.topology(), 0,
                         static_cast<std::int64_t>(scratch.topology()
                                                       .num_nodes()));
  Explorer explorer(scratch, codec, {});
  const Key seed = codec.encode(scratch);
  const StateGraph g = explorer.explore(std::span<const Key>(&seed, 1));

  ASSERT_TRUE(g.complete);
  ASSERT_EQ(g.num_seeds, 1u);
  EXPECT_GT(g.num_states(), 10u);
  EXPECT_GT(g.layers, 0u);
  EXPECT_EQ(g.parent[0], kNoIndex);
  EXPECT_EQ(g.parent_move[0], kSeedMove);

  for (std::uint32_t i = 0; i < g.num_states(); ++i) {
    // Index map is the inverse of keys.
    EXPECT_EQ(g.index.at(g.keys[i]), i);
    // BFS parents precede their children in discovery order.
    if (i >= g.num_seeds) {
      ASSERT_LT(g.parent[i], i);
      ASSERT_LT(g.parent_move[i], kDemonMoveBase);
    }
    // Every recorded arc is a genuinely enabled action whose execution
    // produces exactly the recorded successor key.
    for (const auto& arc : g.arcs_of(i)) {
      codec.decode(g.keys[i], scratch);
      const auto p = move_process(arc.move);
      const auto a = move_action(arc.move);
      ASSERT_TRUE((g.enabled[i] >> arc.move) & 1);
      ASSERT_TRUE(scratch.enabled(p, a));
      scratch.execute(p, a);
      EXPECT_EQ(codec.encode(scratch), g.keys[arc.to]);
    }
  }
}

TEST(Explorer, BoxSeededTriangleSoundThresholdVerifies) {
  // K3 with the sound threshold D = 2 (the repo's documented erratum fix):
  // closure and fair convergence both hold over the full arbitrary-start
  // box.
  DinersConfig cfg;
  cfg.diameter_override = 2;
  DinersSystem scratch = hungry_system(graph::make_complete(3), cfg);
  const StateCodec codec(scratch.topology(), 0, 3);
  Explorer explorer(scratch, codec, {});
  const auto seeds = box_seeds(codec);
  const StateGraph g = explorer.explore(seeds);

  ASSERT_TRUE(g.complete);
  EXPECT_EQ(g.num_states(), codec.domain_size());
  const auto inv = label_invariant(g, codec, scratch);
  EXPECT_FALSE(check_closure(g, inv).has_value());
  EXPECT_FALSE(check_convergence(g, inv).has_value());
}

TEST(Explorer, BoxSeededTrianglePaperThresholdNeverConverges) {
  // The erratum, settled by the fairness machinery: with the paper's
  // D = diameter = 1 on K3, no reachable state satisfies I, so every fair
  // run stays outside I forever and convergence must report a violation.
  DinersSystem scratch = hungry_system(graph::make_complete(3));
  const StateCodec codec(scratch.topology(), 0, 2);
  Explorer explorer(scratch, codec, {});
  const StateGraph g = explorer.explore(box_seeds(codec));

  ASSERT_TRUE(g.complete);
  const auto inv = label_invariant(g, codec, scratch);
  std::uint64_t legit = 0;
  for (const auto b : inv) legit += b;
  EXPECT_EQ(legit, 0u);
  const auto v = check_convergence(g, inv);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->property, "convergence");
}

TEST(Explorer, MaxStatesCapIsExactAndShapesTruncatedGraph) {
  DinersSystem scratch = hungry_system(graph::make_ring(4));
  const StateCodec codec(scratch.topology(), 0, 3);
  Explorer::Options opts;
  opts.max_states = 100;
  Explorer explorer(scratch, codec, opts);
  const Key seed = codec.encode(scratch);
  const StateGraph g = explorer.explore(std::span<const Key>(&seed, 1));
  EXPECT_FALSE(g.complete);
  // The cap is exact: the graph holds exactly max_states states, and only
  // the expanded prefix carries enabled masks / successor rows.
  EXPECT_EQ(g.num_states(), 100u);
  EXPECT_EQ(g.keys.size(), 100u);
  EXPECT_EQ(g.parent.size(), 100u);
  EXPECT_EQ(g.parent_move.size(), 100u);
  EXPECT_LE(g.num_expanded, g.num_states());
  EXPECT_EQ(g.enabled.size(), g.num_expanded);
  EXPECT_EQ(g.succ_begin.size(), g.num_expanded + 1u);
}

TEST(Explorer, PropertyOraclesRejectTruncatedGraphs) {
  DinersSystem scratch = hungry_system(graph::make_ring(4));
  const StateCodec codec(scratch.topology(), 0, 3);
  Explorer::Options opts;
  opts.max_states = 100;
  Explorer explorer(scratch, codec, opts);
  const Key seed = codec.encode(scratch);
  const StateGraph g = explorer.explore(std::span<const Key>(&seed, 1));
  ASSERT_FALSE(g.complete);

  // label_* helpers stay usable on the truncated graph...
  const auto inv = label_invariant(g, codec, scratch);
  EXPECT_EQ(inv.size(), g.num_states());
  // ...but every check_* oracle must refuse to issue a verdict over
  // states with unknown outgoing behavior.
  EXPECT_THROW((void)check_closure(g, inv), std::invalid_argument);
  EXPECT_THROW((void)check_convergence(g, inv), std::invalid_argument);
  EXPECT_THROW((void)check_far_safety(g, inv), std::invalid_argument);
  EXPECT_THROW((void)check_no_starvation(g, codec, 0), std::invalid_argument);
}

TEST(Explorer, DemonVictimReachesEveryDyingWriteAndStaysSilent) {
  DinersSystem scratch = hungry_system(graph::make_path(3));
  scratch.crash(1);
  const StateCodec codec(scratch.topology(), 0, 3);
  Explorer::Options opts;
  opts.demon_victim = 1;
  Explorer explorer(scratch, codec, opts);
  const Key seed = codec.encode(scratch);
  const StateGraph g = explorer.explore(std::span<const Key>(&seed, 1));
  ASSERT_TRUE(g.complete);

  // Every crash assignment of the victim is reachable from the seed in one
  // demonic step (they all appear as states, and those discovered through a
  // demon arc carry a demon parent_move).
  std::size_t demon_children = 0;
  for (std::uint32_t i = 0; i < g.num_states(); ++i) {
    if (g.parent_move[i] >= kDemonMoveBase && g.parent_move[i] != kSeedMove) {
      ++demon_children;
    }
    // The victim never acts: no protocol arc or enabled bit belongs to it.
    for (unsigned a = 0; a < core::DinersSystem::kNumActions; ++a) {
      EXPECT_FALSE((g.enabled[i] >> protocol_move(1, a)) & 1);
    }
    for (const auto& arc : g.arcs_of(i)) {
      EXPECT_NE(move_process(arc.move), 1u);
    }
  }
  EXPECT_GT(demon_children, 0u);

  // The victim's whole assignment box appears in the reachable set.
  const auto total = fault::num_crash_assignments(scratch, 1, 0, 3);
  std::unordered_set<std::uint64_t> victim_patterns;
  for (std::uint32_t i = 0; i < g.num_states(); ++i) {
    const Key masked = key_and(g.keys[i], codec.process_mask(1));
    victim_patterns.insert(masked.lo ^ (masked.hi * 0x9e3779b97f4a7c15ULL));
  }
  EXPECT_EQ(victim_patterns.size(), total);
}

TEST(Explorer, LegacySuccessorPathIsByteIdentical) {
  // The key-patch generator must reproduce the original
  // decode / execute / encode round-trip exactly — full graph comparison
  // over every guard mutation, with and without a demonic victim.
  for (const auto mutation :
       {GuardMutation::kNone, GuardMutation::kNoFixdepth,
        GuardMutation::kGreedyEnter}) {
    for (const bool demonic : {false, true}) {
      DinersSystem scratch = hungry_system(graph::make_ring(4));
      if (demonic) scratch.crash(2);
      const StateCodec codec(scratch.topology(), 0, 3);
      Explorer::Options opts;
      opts.mutation = mutation;
      if (demonic) opts.demon_victim = 2;

      Explorer fast(scratch, codec, opts);
      const Key seed = codec.encode(scratch);
      const StateGraph gf = fast.explore(std::span<const Key>(&seed, 1));

      opts.legacy_successors = true;
      Explorer legacy(scratch, codec, opts);
      const StateGraph gl = legacy.explore(std::span<const Key>(&seed, 1));

      SCOPED_TRACE("mutation=" + std::to_string(static_cast<int>(mutation)) +
                   " demonic=" + std::to_string(demonic));
      expect_graphs_identical(gf, gl);
      ASSERT_TRUE(gf.complete);
      EXPECT_GT(gf.num_states(), 100u);
    }
  }
}

TEST(Explorer, RequiresDeadDemonVictim) {
  DinersSystem scratch = hungry_system(graph::make_path(3));
  const StateCodec codec(scratch.topology(), 0, 3);
  Explorer::Options opts;
  opts.demon_victim = 1;  // still alive
  EXPECT_THROW(Explorer(scratch, codec, opts), std::invalid_argument);
}

}  // namespace
}  // namespace diners::verify
