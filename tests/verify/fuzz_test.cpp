#include "verify/fuzz.hpp"

#include <gtest/gtest.h>

#include "analysis/invariants.hpp"
#include "core/serialize.hpp"
#include "graph/generators.hpp"
#include "verify/counterexample.hpp"

namespace diners::verify {
namespace {

using core::DinersConfig;
using core::DinersSystem;

DinersConfig sound_config(std::uint32_t n) {
  DinersConfig cfg;
  cfg.diameter_override = n - 1;  // the repo's documented sound threshold
  return cfg;
}

TEST(Fuzz, CleanRunOnRing5SoundThreshold) {
  FuzzOptions options;
  options.trials = 40;
  options.seed = 3;
  FuzzReport report =
      run_fuzz(graph::make_ring(5), sound_config(5), options);
  EXPECT_TRUE(report.ok) << report.detail;
  EXPECT_EQ(report.trials_run, 40u);
  EXPECT_GT(report.stabilization_steps_max, 0u);
  EXPECT_FALSE(report.cex.has_value());
}

TEST(Fuzz, IsDeterministicForAFixedSeed) {
  FuzzOptions options;
  options.trials = 8;
  options.seed = 17;
  options.crashes = 0;  // phase 1 only, fully deterministic given the seed
  const graph::Graph g = graph::make_ring(4);
  const DinersConfig cfg = sound_config(4);
  FuzzReport a = run_fuzz(g, cfg, options);
  FuzzReport b = run_fuzz(g, cfg, options);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.stabilization_steps_max, b.stabilization_steps_max);
  EXPECT_EQ(a.detail, b.detail);
}

TEST(Fuzz, GreedyEnterMutationYieldsAShrunkReplayableCounterexample) {
  // kGreedyEnter drops the no-eating-descendant conjunct from enter: the
  // fuzzer must catch a safety failure, and the shrunk witness must still
  // fail under the *mutated* program when replayed from its snapshot.
  FuzzOptions options;
  options.trials = 200;
  options.seed = 5;
  options.mutation = GuardMutation::kGreedyEnter;
  options.shrink = true;
  const graph::Graph g = graph::make_ring(6);
  const DinersConfig cfg = sound_config(6);
  FuzzReport report = run_fuzz(g, cfg, options);
  ASSERT_FALSE(report.ok);
  ASSERT_TRUE(report.cex.has_value());
  EXPECT_FALSE(report.cex->events.empty());

  // Replay the shrunk events on a fresh mutated system: every event legal,
  // and the invariant violated at the end (the witness survived shrinking).
  DinersSystem system(g, cfg);
  core::restore(system, report.cex->start);
  MutatedDiners program(system, GuardMutation::kGreedyEnter);
  for (const CexEvent& e : report.cex->events) {
    ASSERT_EQ(e.kind, CexEvent::Kind::kAction);
    ASSERT_TRUE(program.enabled(e.process, e.action));
    program.execute(e.process, e.action);
  }
  EXPECT_FALSE(analysis::holds_invariant(system));

  // Minimality of the greedy shrinker's fixpoint: no single remaining
  // event is removable.
  for (std::size_t skip = 0; skip < report.cex->events.size(); ++skip) {
    DinersSystem s2(g, cfg);
    core::restore(s2, report.cex->start);
    MutatedDiners p2(s2, GuardMutation::kGreedyEnter);
    bool legal = true;
    bool reached = analysis::holds_invariant(s2);
    for (std::size_t i = 0; i < report.cex->events.size(); ++i) {
      if (i == skip) continue;
      const CexEvent& e = report.cex->events[i];
      if (!p2.enabled(e.process, e.action)) {
        legal = false;
        break;
      }
      p2.execute(e.process, e.action);
      if (analysis::holds_invariant(s2)) reached = true;
    }
    EXPECT_FALSE(legal && reached && !analysis::holds_invariant(s2))
        << "event " << skip << " is removable";
  }
}

TEST(Fuzz, PaperThresholdRingLosesClosureUnderFuzzing) {
  // The erratum, found by fuzzing alone: with D = diameter the unmutated
  // program can reach I and then lose it on ring-8.
  FuzzOptions options;
  options.trials = 500;
  options.seed = 1;
  options.crashes = 0;
  DinersConfig cfg;  // D defaults to the graph diameter = 4
  FuzzReport report = run_fuzz(graph::make_ring(8), cfg, options);
  ASSERT_FALSE(report.ok);
  ASSERT_TRUE(report.cex.has_value());
  EXPECT_EQ(report.cex->property, "closure");
}

}  // namespace
}  // namespace diners::verify
