#include "verify/properties.hpp"

#include <gtest/gtest.h>

#include <span>

#include "analysis/invariants.hpp"
#include "core/serialize.hpp"
#include "graph/generators.hpp"
#include "verify/explorer.hpp"

namespace diners::verify {
namespace {

using core::DinersConfig;
using core::DinersSystem;
using P = DinersSystem::ProcessId;

/// Hand-built state graphs pin the weak-fairness SCC feasibility condition
/// exactly (see properties.hpp for the proof sketch it implements).
StateGraph tiny_graph(std::vector<std::uint64_t> enabled,
                      std::vector<std::vector<StateGraph::Arc>> arcs) {
  StateGraph g;
  const auto n = enabled.size();
  g.keys.resize(n);
  g.enabled = std::move(enabled);
  g.parent.assign(n, kNoIndex);
  g.parent_move.assign(n, kSeedMove);
  g.num_seeds = static_cast<std::uint32_t>(n);
  g.succ_begin.push_back(0);
  for (auto& out : arcs) {
    for (const auto& a : out) g.succ.push_back(a);
    g.succ_begin.push_back(static_cast<std::uint32_t>(g.succ.size()));
  }
  return g;
}

constexpr std::uint16_t kMoveA = protocol_move(0, DinersSystem::kLeave);
constexpr std::uint16_t kMoveB = protocol_move(1, DinersSystem::kEnter);
constexpr std::uint16_t kMoveJoin = protocol_move(1, DinersSystem::kJoin);

TEST(FairCycle, CycleExecutingEveryAlwaysEnabledActionIsFeasible) {
  // Two states looping via kMoveA; only kMoveA is enabled anywhere, so the
  // loop executes everything weak fairness can force.
  auto g = tiny_graph({std::uint64_t{1} << kMoveA, std::uint64_t{1} << kMoveA},
                      {{{1, kMoveA}}, {{0, kMoveA}}});
  const std::vector<std::uint8_t> bad{1, 1};
  const auto v = check_convergence(g, {0, 0});
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->kind, Violation::Kind::kCycle);
  EXPECT_EQ(v->cycle.size(), 2u);
  // The witness starts and ends at the reported entry state.
  EXPECT_EQ(v->cycle.back().to, v->state);
}

TEST(FairCycle, ContinuouslyEnabledUnexecutedActionKillsTheCycle) {
  // Same loop, but kMoveB is enabled in both states and never fired: any
  // run staying in the loop is unfair, so no violation exists (both states
  // are non-terminal, so the stuck check does not fire either).
  const std::uint64_t both =
      (std::uint64_t{1} << kMoveA) | (std::uint64_t{1} << kMoveB);
  auto g = tiny_graph({both, both}, {{{1, kMoveA}}, {{0, kMoveA}}});
  EXPECT_FALSE(check_convergence(g, {0, 0}).has_value());
}

TEST(FairCycle, JoinIsNeverFairnessForced) {
  // The unexecuted action is a join: becoming hungry is the environment's
  // choice, so the loop must still count as a fair run.
  const std::uint64_t both =
      (std::uint64_t{1} << kMoveA) | (std::uint64_t{1} << kMoveJoin);
  auto g = tiny_graph({both, both}, {{{1, kMoveA}}, {{0, kMoveA}}});
  const auto v = check_convergence(g, {0, 0});
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->kind, Violation::Kind::kCycle);
}

TEST(FairCycle, TerminalBadStateReportedAsStuck) {
  auto g = tiny_graph({0}, {{}});
  const auto v = check_convergence(g, {0});
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->kind, Violation::Kind::kStuck);
  EXPECT_EQ(v->state, 0u);
}

TEST(Closure, ReportsTheViolatingMove) {
  // State 0 in I steps to state 1 outside I.
  auto g = tiny_graph({std::uint64_t{1} << kMoveA, 0}, {{{1, kMoveA}}, {}});
  const auto v = check_closure(g, {1, 0});
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->kind, Violation::Kind::kClosure);
  EXPECT_EQ(v->state, 0u);
  EXPECT_EQ(v->move, kMoveA);
  EXPECT_EQ(v->successor, 1u);
}

// ---------------------------------------------------------------------------
// End-to-end on real explorations.

DinersSystem hungry_system(graph::Graph g, DinersConfig cfg = {}) {
  DinersSystem s(std::move(g), cfg);
  for (P p = 0; p < s.topology().num_nodes(); ++p) s.set_needs(p, true);
  return s;
}

StateGraph explore_box(DinersSystem& scratch, const StateCodec& codec,
                       Explorer::Options opts = {}) {
  std::vector<Key> seeds;
  for (std::uint64_t i = 0; i < codec.domain_size(); ++i) {
    seeds.push_back(codec.domain_key(i));
  }
  Explorer explorer(scratch, codec, opts);
  return explorer.explore(seeds);
}

TEST(Theorems, TriangleSoundThresholdSatisfiesAllProperties) {
  DinersConfig cfg;
  cfg.diameter_override = 2;
  DinersSystem scratch = hungry_system(graph::make_complete(3), cfg);
  const StateCodec codec(scratch.topology(), 0, 3);
  StateGraph g = explore_box(scratch, codec);
  ASSERT_TRUE(g.complete);

  const auto inv = label_invariant(g, codec, scratch);
  EXPECT_FALSE(check_closure(g, inv).has_value());
  EXPECT_FALSE(check_convergence(g, inv).has_value());
  for (P p = 0; p < 3; ++p) {
    EXPECT_FALSE(check_no_starvation(g, codec, p).has_value())
        << "process " << p << " starves";
  }
}

TEST(Theorems, NoFixdepthMutationBreaksConvergence) {
  // With fixdepth disabled, a seeded priority cycle is never broken: the
  // checker must find a fair run that stays outside I forever.
  DinersConfig cfg;
  cfg.diameter_override = 2;
  DinersSystem scratch = hungry_system(graph::make_complete(3), cfg);
  const StateCodec codec(scratch.topology(), 0, 3);
  Explorer::Options opts;
  opts.mutation = GuardMutation::kNoFixdepth;
  StateGraph g = explore_box(scratch, codec, opts);
  ASSERT_TRUE(g.complete);

  const auto inv = label_invariant(g, codec, scratch);
  const auto v = check_convergence(g, inv);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->kind, Violation::Kind::kCycle);
  EXPECT_FALSE(v->cycle.empty());
}

TEST(Theorems, LocalityTwoHoldsOnPath4UnderADemonicVictim) {
  // Crash an endpoint of path-4 maliciously: the far end (distance 3) must
  // neither keep an eating violation nor starve. Instance-seeded to keep the
  // demonized space small.
  DinersConfig cfg;
  cfg.diameter_override = 3;  // sound for n = 4
  DinersSystem prototype = hungry_system(graph::make_path(4), cfg);
  const StateCodec codec(prototype.topology(), 0, 4);

  DinersSystem healthy_scratch = core::clone(prototype);
  Explorer healthy(healthy_scratch, codec, {});
  const Key seed = codec.encode(prototype);
  const StateGraph hg = healthy.explore(std::span<const Key>(&seed, 1));
  ASSERT_TRUE(hg.complete);

  DinersSystem crashed_scratch = core::clone(prototype);
  crashed_scratch.crash(0);
  Explorer::Options opts;
  opts.demon_victim = 0;
  Explorer demon(crashed_scratch, codec, opts);
  const StateGraph cg = demon.explore(hg.keys);
  ASSERT_TRUE(cg.complete);
  EXPECT_GT(cg.num_states(), hg.num_states());

  const std::vector<P> dead{0};
  const auto dist = graph::distances_to_set(prototype.topology(),
                                            std::span<const P>(dead));
  const auto far_bad = label_far_violation(cg, codec, crashed_scratch, dist,
                                           2);
  EXPECT_FALSE(check_far_safety(cg, far_bad).has_value());
  for (P p = 0; p < 4; ++p) {
    if (dist[p] <= 2) continue;
    EXPECT_FALSE(check_no_starvation(cg, codec, p).has_value())
        << "far process " << p << " starves";
  }
}

TEST(Theorems, LabelInvariantAgreesWithTheNaiveOracle) {
  DinersConfig cfg;
  cfg.diameter_override = 2;
  DinersSystem scratch = hungry_system(graph::make_path(3), cfg);
  const StateCodec codec(scratch.topology(), 0, 2);
  StateGraph g = explore_box(scratch, codec);
  const auto inv = label_invariant(g, codec, scratch);
  for (std::uint32_t i = 0; i < g.num_states(); ++i) {
    codec.decode(g.keys[i], scratch);
    EXPECT_EQ(inv[i] != 0, analysis::holds_invariant(scratch)) << i;
  }
}

}  // namespace
}  // namespace diners::verify
