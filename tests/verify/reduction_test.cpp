// Differential battery for the explorer's symmetry and partial-order
// reductions: on every seed topology and guard mutant, the reduced
// verifier must reach exactly the verdict of the unreduced one, the
// canonical state counts must shrink by the predicted orbit factor, lifted
// counterexamples must replay identically, and the --max-states cap must
// count canonical states (with truncated quotient graphs still rejected by
// the property oracles).
//
// This battery is the empirical soundness pin for the ample-set POR rule
// (see DESIGN.md §10): POR keeps an arc-subgraph, so any violation it
// reports is genuine; that it misses none is exactly what the verdict
// equality here checks.
#include <gtest/gtest.h>

#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/figure2.hpp"
#include "core/serialize.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "verify/counterexample.hpp"
#include "verify/explorer.hpp"
#include "verify/mutation.hpp"
#include "verify/properties.hpp"

namespace diners::verify {
namespace {

using core::DinersConfig;
using core::DinersSystem;
using graph::NodeId;

DinersSystem hungry_system(graph::Graph g) {
  DinersConfig cfg;
  cfg.diameter_override = g.num_nodes() - 1;  // the sound threshold
  DinersSystem s(std::move(g), cfg);
  for (NodeId p = 0; p < s.topology().num_nodes(); ++p) s.set_needs(p, true);
  return s;
}

struct RunSpec {
  GuardMutation mutation = GuardMutation::kNone;
  bool sym = false;
  bool por = false;
  bool compact = false;
  bool box = true;       ///< box seeding; false = instance seeding
  bool victims = true;   ///< run the demonic-victim locality loop
  unsigned jobs = 1;
  std::uint32_t max_states = 8'000'000;
};

struct RunResult {
  std::string verdict;  ///< "verified", "inconclusive", or the property
  std::uint64_t healthy_states = 0;
  std::uint64_t healthy_arcs = 0;
  StateGraph::ReductionStats reduction;
  std::optional<Counterexample> cex;
};

/// In-process mirror of diners_mc's exhaustive mode (same oracles, same
/// counterexample composition, same per-orbit loop reduction), so the
/// battery compares the actual verification pipeline, not a re-derivation.
RunResult run_verify(const DinersSystem& prototype, const RunSpec& spec) {
  RunResult r;
  const auto& topo = prototype.topology();
  const StateCodec codec(topo, 0,
                         static_cast<std::int64_t>(
                             *prototype.config().diameter_override) +
                             1);

  std::vector<Key> seeds;
  if (spec.box) {
    seeds.reserve(codec.domain_size());
    for (std::uint64_t i = 0; i < codec.domain_size(); ++i) {
      seeds.push_back(codec.domain_key(i));
    }
  } else {
    seeds.push_back(codec.encode(prototype));
  }

  DinersSystem scratch = core::clone(prototype);
  Explorer::Options opts;
  opts.mutation = spec.mutation;
  opts.max_states = spec.max_states;
  opts.jobs = spec.jobs;
  opts.reduce_sym = spec.sym;
  opts.reduce_por = spec.por;
  opts.compact_visited = spec.compact;
  Explorer explorer(scratch, codec, opts);
  const StateGraph healthy = explorer.explore(seeds);
  r.healthy_states = healthy.num_states();
  r.healthy_arcs = healthy.succ.size();
  r.reduction = healthy.reduction;
  if (!healthy.complete) {
    r.verdict = "inconclusive";
    return r;
  }

  const auto orbit_reps = [](const StateGraph& sg, NodeId nn) {
    std::vector<std::uint8_t> rep(nn, 1);
    if (sg.sym != nullptr) {
      for (const auto& orb : sg.sym->node_orbits()) {
        for (std::size_t i = 1; i < orb.size(); ++i) rep[orb[i]] = 0;
      }
    }
    return rep;
  };
  const auto fail = [&](std::optional<sim::ProcessId> victim,
                        const StateGraph* crashed, const Violation& v) {
    r.verdict = v.property;
    r.cex = compose_counterexample(healthy, codec, prototype, victim, crashed,
                                   v);
  };

  const auto inv = label_invariant(healthy, codec, scratch);
  if (const auto v = check_closure(healthy, inv)) {
    fail(std::nullopt, nullptr, *v);
    return r;
  }
  if (const auto v = check_convergence(healthy, inv)) {
    fail(std::nullopt, nullptr, *v);
    return r;
  }
  if (prototype.dead_processes().empty()) {
    const auto prep = orbit_reps(healthy, topo.num_nodes());
    for (NodeId p = 0; p < topo.num_nodes(); ++p) {
      if (prep[p] == 0) continue;
      if (const auto v = check_no_starvation(healthy, codec, p)) {
        fail(std::nullopt, nullptr, *v);
        return r;
      }
    }
  }

  const auto pre_dead = prototype.dead_processes();
  if (!pre_dead.empty()) {
    const auto dist = graph::distances_to_set(
        topo, std::span<const NodeId>(pre_dead));
    const auto far_bad =
        label_far_violation(healthy, codec, scratch, dist, 2);
    if (const auto v = check_far_safety(healthy, far_bad)) {
      fail(std::nullopt, nullptr, *v);
      return r;
    }
    const auto prep = orbit_reps(healthy, topo.num_nodes());
    for (NodeId p = 0; p < topo.num_nodes(); ++p) {
      if (!prototype.alive(p) || dist[p] <= 2 || !prototype.needs(p) ||
          prep[p] == 0) {
        continue;
      }
      if (const auto v = check_no_starvation(healthy, codec, p)) {
        fail(std::nullopt, nullptr, *v);
        return r;
      }
    }
  } else if (spec.victims) {
    const auto vrep = orbit_reps(healthy, topo.num_nodes());
    for (NodeId victim = 0; victim < topo.num_nodes(); ++victim) {
      if (vrep[victim] == 0) continue;
      DinersSystem crashed_scratch = core::clone(prototype);
      crashed_scratch.crash(victim);
      Explorer::Options copts = opts;
      copts.expected_states = healthy.num_states();
      copts.demon_victim = victim;
      Explorer demon(crashed_scratch, codec, copts);
      const StateGraph crashed = demon.explore(healthy.keys);
      r.reduction.raw_candidates += crashed.reduction.raw_candidates;
      r.reduction.canonical_hits += crashed.reduction.canonical_hits;
      if (!crashed.complete) {
        r.verdict = "inconclusive";
        return r;
      }
      const auto dead = crashed_scratch.dead_processes();
      const auto dist =
          graph::distances_to_set(topo, std::span<const NodeId>(dead));
      const auto far_bad =
          label_far_violation(crashed, codec, crashed_scratch, dist, 2);
      if (const auto v = check_far_safety(crashed, far_bad)) {
        fail(victim, &crashed, *v);
        return r;
      }
      const auto crep = orbit_reps(crashed, topo.num_nodes());
      for (NodeId p = 0; p < topo.num_nodes(); ++p) {
        if (!crashed_scratch.alive(p) || dist[p] <= 2 ||
            !crashed_scratch.needs(p) || crep[p] == 0) {
          continue;
        }
        if (const auto v = check_no_starvation(crashed, codec, p)) {
          fail(victim, &crashed, *v);
          return r;
        }
      }
    }
  }
  r.verdict = "verified";
  return r;
}

/// Replay outcome triple for comparing lifted counterexamples across
/// reduction modes.
struct ReplayOutcome {
  bool legal = false;
  bool cycle_closes = false;
  bool invariant_at_end = false;

  friend bool operator==(const ReplayOutcome&, const ReplayOutcome&) =
      default;
};

ReplayOutcome replay(const DinersSystem& prototype, const Counterexample& cex) {
  DinersSystem sys = core::clone(prototype);
  core::restore(sys, cex.start);
  const CexReplayResult res = replay_counterexample(sys, cex);
  return {res.legal, res.cycle_closes, res.invariant_at_end};
}

struct Topo {
  std::string name;
  graph::Graph graph;
};

std::vector<Topo> battery_topologies() {
  std::vector<Topo> out;
  out.push_back({"ring4", graph::make_ring(4)});
  out.push_back({"line4", graph::make_path(4)});
  out.push_back({"star4", graph::make_star(4)});
  return out;
}

// ---- verdict equality across reduction modes ----------------------------

TEST(Reduction, DifferentialVerdictsMatchUnreducedOnSeedTopologies) {
  for (const auto& t : battery_topologies()) {
    for (const auto mutation :
         {GuardMutation::kNone, GuardMutation::kNoFixdepth,
          GuardMutation::kGreedyEnter}) {
      const DinersSystem proto = hungry_system(t.graph);
      RunSpec spec;
      spec.mutation = mutation;
      const RunResult base = run_verify(proto, spec);

      for (const bool por : {false, true}) {
        RunSpec red = spec;
        red.sym = true;
        red.por = por;
        red.compact = true;
        const RunResult r = run_verify(proto, red);
        const std::string ctx = t.name + " mutation=" +
                                std::string(to_string(mutation)) +
                                (por ? " sym,por" : " sym");
        EXPECT_EQ(r.verdict, base.verdict) << ctx;
        EXPECT_LE(r.healthy_states, base.healthy_states) << ctx;
        // Both found a counterexample: the lifted reduced trace must
        // replay exactly like the unreduced one.
        if (base.cex && r.cex) {
          EXPECT_EQ(replay(proto, *r.cex), replay(proto, *base.cex)) << ctx;
        }
      }
      // POR alone (no symmetry): under box seeding every state is a seed,
      // so the cycle proviso blocks all pruning and the graph is
      // bit-identical to the unreduced one. One mutation suffices — the
      // proviso argument is mutation-independent.
      if (mutation == GuardMutation::kNone) {
        RunSpec por_only = spec;
        por_only.por = true;
        const RunResult p = run_verify(proto, por_only);
        EXPECT_EQ(p.verdict, base.verdict) << t.name;
        EXPECT_EQ(p.healthy_states, base.healthy_states) << t.name;
        EXPECT_EQ(p.healthy_arcs, base.healthy_arcs) << t.name;
        EXPECT_EQ(p.reduction.por_arcs_pruned, 0u) << t.name;
      }
    }
  }
}

TEST(Reduction, DifferentialVerdictsMatchOnFigure2) {
  // figure2 is the paper's pinned mid-run scenario: instance-seeded, with
  // a pre-dead process, so the locality analysis runs against the existing
  // dead set.
  for (const auto mutation :
       {GuardMutation::kNone, GuardMutation::kNoFixdepth}) {
    DinersSystem proto = core::make_figure2_system();
    DinersConfig cfg = proto.config();
    if (!cfg.diameter_override) {
      cfg.diameter_override = graph::diameter(proto.topology());
      DinersSystem rebuilt(proto.topology(), cfg);
      core::restore(rebuilt, core::capture(proto));
      proto = std::move(rebuilt);
    }
    RunSpec spec;
    spec.mutation = mutation;
    spec.box = false;
    const RunResult base = run_verify(proto, spec);
    RunSpec red = spec;
    red.sym = red.por = red.compact = true;
    const RunResult r = run_verify(proto, red);
    EXPECT_EQ(r.verdict, base.verdict)
        << "figure2 mutation=" << to_string(mutation);
    EXPECT_LE(r.healthy_states, base.healthy_states);
  }
}

TEST(Reduction, InstanceSeededPorVerdictsMatchAndPrune) {
  // Instance seeding is where POR actually prunes (the visited-probe
  // proviso can pass). Ring-5 crash-free: closure + convergence +
  // progress under none / por / sym,por must agree.
  const DinersSystem proto = hungry_system(graph::make_ring(5));
  RunSpec spec;
  spec.box = false;
  spec.victims = false;
  const RunResult base = run_verify(proto, spec);
  EXPECT_EQ(base.verdict, "verified");

  RunSpec por = spec;
  por.por = true;
  const RunResult rp = run_verify(proto, por);
  EXPECT_EQ(rp.verdict, base.verdict);
  EXPECT_LE(rp.healthy_states, base.healthy_states);
  EXPECT_LE(rp.healthy_arcs, base.healthy_arcs);
  EXPECT_GT(rp.reduction.por_ample_states, 0u);
  EXPECT_GT(rp.reduction.por_arcs_pruned, 0u);

  RunSpec both = spec;
  both.sym = both.por = both.compact = true;
  const RunResult rb = run_verify(proto, both);
  EXPECT_EQ(rb.verdict, base.verdict);
  EXPECT_LT(rb.healthy_states, base.healthy_states);
}

// ---- orbit-factor state counts ------------------------------------------

TEST(Reduction, RingStateCountsShrinkByTheDihedralFactor) {
  // |Aut(ring-n)| = 2n on uniform labels; the canonical count is at least
  // unreduced/2n (orbits of symmetric states are smaller than 2n) and, on
  // these instances, within 10% of that bound. Ring-4 over the full
  // arbitrary-start box; ring-5 instance-seeded (its box is ~60M states).
  for (NodeId n = 4; n <= 5; ++n) {
    const DinersSystem proto = hungry_system(graph::make_ring(n));
    RunSpec spec;
    spec.victims = false;
    spec.box = n == 4;
    const RunResult base = run_verify(proto, spec);
    RunSpec red = spec;
    red.sym = true;
    red.compact = true;
    const RunResult r = run_verify(proto, red);
    EXPECT_EQ(r.verdict, base.verdict);
    const std::uint64_t factor = 2u * n;
    EXPECT_GE(r.healthy_states * factor, base.healthy_states) << "ring " << n;
    EXPECT_LE(static_cast<double>(r.healthy_states) * factor,
              static_cast<double>(base.healthy_states) * 1.10)
        << "ring " << n;
    EXPECT_GT(r.reduction.canonical_hits, 0u);
  }
}

// ---- canonical-form invariants of the reduced graph ---------------------

TEST(Reduction, ReducedGraphStoresOnlyCanonicalKeys) {
  const DinersSystem proto = hungry_system(graph::make_ring(4));
  const StateCodec codec(proto.topology(), 0, 4);
  DinersSystem scratch = core::clone(proto);
  Explorer::Options opts;
  opts.reduce_sym = true;
  opts.compact_visited = true;
  Explorer explorer(scratch, codec, opts);
  const Key seed = codec.encode(proto);
  const StateGraph g = explorer.explore(std::span<const Key>(&seed, 1));
  ASSERT_TRUE(g.complete);
  ASSERT_NE(g.sym, nullptr);
  for (std::uint32_t i = 0; i < g.num_states(); ++i) {
    SymmetryGroup::ElemId wit = 0xFFFF;
    ASSERT_EQ(g.sym->canonical(g.keys[i], &wit), g.keys[i]) << "state " << i;
    ASSERT_EQ(wit, SymmetryGroup::kIdentity);
  }
  // Arc targets are canonical state ids and witnesses are valid elements.
  for (const auto& arc : g.succ) {
    ASSERT_LT(arc.to, g.num_states());
    ASSERT_LT(arc.witness, g.sym->size());
  }
}

TEST(Reduction, ReducedGraphIsJobsInvariant) {
  // The jobs-invariance contract survives both reductions: identical keys,
  // parents, witnesses, arcs, and stats for any worker count.
  const DinersSystem proto = hungry_system(graph::make_ring(5));
  const StateCodec codec(proto.topology(), 0, 5);
  const Key seed = codec.encode(proto);
  StateGraph graphs[2];
  for (int i = 0; i < 2; ++i) {
    DinersSystem scratch = core::clone(proto);
    Explorer::Options opts;
    opts.jobs = i == 0 ? 1 : 3;
    opts.reduce_sym = true;
    opts.reduce_por = true;
    opts.compact_visited = i == 1;  // the visited layout is internal too
    Explorer explorer(scratch, codec, opts);
    graphs[i] = explorer.explore(std::span<const Key>(&seed, 1));
  }
  const StateGraph& a = graphs[0];
  const StateGraph& b = graphs[1];
  ASSERT_EQ(a.num_states(), b.num_states());
  ASSERT_EQ(a.succ.size(), b.succ.size());
  for (std::uint32_t i = 0; i < a.num_states(); ++i) {
    ASSERT_EQ(a.keys[i], b.keys[i]) << "state " << i;
    ASSERT_EQ(a.parent[i], b.parent[i]) << "state " << i;
    ASSERT_EQ(a.parent_witness[i], b.parent_witness[i]) << "state " << i;
  }
  ASSERT_EQ(a.succ_begin, b.succ_begin);
  for (std::size_t i = 0; i < a.succ.size(); ++i) {
    ASSERT_EQ(a.succ[i].to, b.succ[i].to) << "arc " << i;
    ASSERT_EQ(a.succ[i].move, b.succ[i].move) << "arc " << i;
    ASSERT_EQ(a.succ[i].witness, b.succ[i].witness) << "arc " << i;
  }
  EXPECT_EQ(a.reduction.raw_candidates, b.reduction.raw_candidates);
  EXPECT_EQ(a.reduction.canonical_hits, b.reduction.canonical_hits);
  EXPECT_EQ(a.reduction.por_ample_states, b.reduction.por_ample_states);
  EXPECT_EQ(a.reduction.por_arcs_pruned, b.reduction.por_arcs_pruned);
}

// ---- lifted counterexamples replay concretely ---------------------------

TEST(Reduction, LiftedConvergenceCycleReplaysGreen) {
  // The no-fixdepth mutant's convergence cycle, found in the quotient
  // graph, must lift to a concrete trace that replays legally, closes its
  // cycle, and ends outside I — exactly like the unreduced trace.
  const DinersSystem proto = hungry_system(graph::make_ring(4));
  RunSpec spec;
  spec.mutation = GuardMutation::kNoFixdepth;
  const RunResult base = run_verify(proto, spec);
  RunSpec red = spec;
  red.sym = red.compact = true;
  const RunResult r = run_verify(proto, red);
  ASSERT_EQ(base.verdict, "convergence");
  ASSERT_EQ(r.verdict, "convergence");
  ASSERT_TRUE(base.cex && r.cex);
  const ReplayOutcome expected{true, true, false};
  EXPECT_EQ(replay(proto, *base.cex), expected);
  EXPECT_EQ(replay(proto, *r.cex), expected);
}

TEST(Reduction, LiftedCrashedStemsReplayLegally) {
  // The hard junction: a violation in the demonic-victim quotient graph
  // must lift through *two* symmetry groups — the healthy stabilizer for
  // the pre-crash stem and the crashed stabilizer for the post-crash stem.
  // No natural violation exists on the verified protocol, so drive
  // compose_counterexample directly with synthetic stuck-style violations
  // at sampled crashed states and check every lifted trace replays with
  // all guards green.
  const DinersSystem proto = hungry_system(graph::make_ring(4));
  const StateCodec codec(proto.topology(), 0, 4);
  std::vector<Key> seeds;
  seeds.reserve(codec.domain_size());
  for (std::uint64_t i = 0; i < codec.domain_size(); ++i) {
    seeds.push_back(codec.domain_key(i));
  }
  DinersSystem scratch = core::clone(proto);
  Explorer::Options opts;
  opts.reduce_sym = true;
  opts.compact_visited = true;
  Explorer explorer(scratch, codec, opts);
  const StateGraph healthy = explorer.explore(seeds);
  ASSERT_TRUE(healthy.complete);
  ASSERT_NE(healthy.sym, nullptr);

  const NodeId victim = 0;
  DinersSystem crashed_scratch = core::clone(proto);
  crashed_scratch.crash(victim);
  Explorer::Options copts = opts;
  copts.demon_victim = victim;
  copts.expected_states = healthy.num_states();
  Explorer demon(crashed_scratch, codec, copts);
  const StateGraph crashed = demon.explore(healthy.keys);
  ASSERT_TRUE(crashed.complete);

  const std::uint32_t stride = crashed.num_states() / 97 + 1;
  std::size_t checked = 0;
  for (std::uint32_t s = 0; s < crashed.num_states(); s += stride) {
    Violation v;
    v.kind = Violation::Kind::kStuck;
    v.property = "synthetic";
    v.detail = "lift probe";
    v.state = s;
    const Counterexample cex =
        compose_counterexample(healthy, codec, proto, victim, &crashed, v);
    DinersSystem sys = core::clone(proto);
    core::restore(sys, cex.start);
    const CexReplayResult res = replay_counterexample(sys, cex);
    ASSERT_TRUE(res.legal) << "state " << s << ": " << res.reason
                           << " at event " << res.failed_index;
    ++checked;
  }
  EXPECT_GT(checked, 50u);
}

// ---- --max-states cap semantics under reduction -------------------------

TEST(Reduction, CapCountsCanonicalStatesAndTruncationIsRejected) {
  const DinersSystem proto = hungry_system(graph::make_ring(4));
  const StateCodec codec(proto.topology(), 0, 4);
  std::vector<Key> seeds;
  for (std::uint64_t i = 0; i < codec.domain_size(); ++i) {
    seeds.push_back(codec.domain_key(i));
  }

  // Unreduced, the box has 810000 reachable states — far past this cap.
  // Reduced, the canonical count fits, so exploration completes: the cap
  // counts canonical states, not raw orbit members.
  constexpr std::uint32_t kCap = 120'000;
  {
    DinersSystem scratch = core::clone(proto);
    Explorer::Options opts;
    opts.max_states = kCap;
    opts.reduce_sym = true;
    opts.compact_visited = true;
    Explorer explorer(scratch, codec, opts);
    const StateGraph g = explorer.explore(seeds);
    EXPECT_TRUE(g.complete);
    EXPECT_LE(g.num_states(), kCap);
    EXPECT_GT(g.num_states(), 100'000u);
  }

  // A cap below the canonical count truncates the quotient graph, and
  // every oracle refuses to issue a verdict on it.
  {
    DinersSystem scratch = core::clone(proto);
    Explorer::Options opts;
    opts.max_states = 50'000;
    opts.reduce_sym = true;
    opts.compact_visited = true;
    Explorer explorer(scratch, codec, opts);
    const StateGraph g = explorer.explore(seeds);
    ASSERT_FALSE(g.complete);
    std::vector<std::uint8_t> inv(g.num_states(), 1);
    EXPECT_THROW((void)check_closure(g, inv), std::invalid_argument);
    EXPECT_THROW((void)check_convergence(g, inv), std::invalid_argument);
    EXPECT_THROW((void)check_no_starvation(g, codec, 0),
                 std::invalid_argument);
    EXPECT_THROW((void)check_far_safety(g, inv), std::invalid_argument);
  }
}

}  // namespace
}  // namespace diners::verify
