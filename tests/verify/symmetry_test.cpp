// Canonicalization algebra of verify::SymmetryGroup, fuzzed over random
// domain keys: canon is idempotent, constant on orbits, witnessed by a
// group element; apply() is a group action consistent with compose() and
// inverse(); orbit sizes divide the group order (orbit-stabilizer).
#include "verify/symmetry.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/diners_system.hpp"
#include "graph/automorphisms.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"
#include "verify/canonical.hpp"
#include "verify/explorer.hpp"

namespace diners::verify {
namespace {

using core::DinersSystem;

struct KeyLess {
  bool operator()(const Key& a, const Key& b) const {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }
};

SymmetryGroup make_group(const StateCodec& codec, const graph::Graph& g) {
  return SymmetryGroup(codec, graph::automorphism_generators(g));
}

std::vector<Key> random_domain_keys(const StateCodec& codec, std::size_t count,
                                    std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<Key> keys;
  keys.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    keys.push_back(codec.domain_key(rng.next() % codec.domain_size()));
  }
  return keys;
}

struct Instance {
  graph::Graph graph;
  std::size_t expected_order;
};

std::vector<Instance> instances() {
  std::vector<Instance> out;
  out.push_back({graph::make_ring(4), 8});
  out.push_back({graph::make_ring(5), 10});
  out.push_back({graph::make_path(4), 2});
  out.push_back({graph::make_star(4), 6});
  out.push_back({graph::make_complete(4), 24});
  return out;
}

TEST(SymmetryGroup, ClosureHasExpectedOrderAndIdentityAtZero) {
  for (const auto& inst : instances()) {
    const StateCodec codec(inst.graph, 0, inst.graph.num_nodes());
    const SymmetryGroup grp = make_group(codec, inst.graph);
    EXPECT_EQ(grp.size(), inst.expected_order) << inst.graph.describe();
    for (graph::NodeId p = 0; p < inst.graph.num_nodes(); ++p) {
      EXPECT_EQ(grp.apply_node(SymmetryGroup::kIdentity, p), p);
    }
  }
}

TEST(SymmetryGroup, ApplyIsAGroupAction) {
  for (const auto& inst : instances()) {
    const StateCodec codec(inst.graph, 0, inst.graph.num_nodes());
    const SymmetryGroup grp = make_group(codec, inst.graph);
    const auto keys = random_domain_keys(codec, 40, 0xAC7104u);
    for (const Key& k : keys) {
      EXPECT_EQ(grp.apply(SymmetryGroup::kIdentity, k), k);
      for (SymmetryGroup::ElemId a = 0; a < grp.size(); ++a) {
        // Inverse round trip.
        EXPECT_EQ(grp.apply(grp.inverse(a), grp.apply(a, k)), k);
        for (SymmetryGroup::ElemId b = 0; b < grp.size(); ++b) {
          // apply(a) ∘ apply(b) == apply(a∘b).
          EXPECT_EQ(grp.apply(a, grp.apply(b, k)),
                    grp.apply(grp.compose(a, b), k));
        }
      }
    }
  }
}

TEST(SymmetryGroup, CanonIsIdempotentConstantOnOrbitsAndWitnessed) {
  for (const auto& inst : instances()) {
    const StateCodec codec(inst.graph, 0, inst.graph.num_nodes());
    const SymmetryGroup grp = make_group(codec, inst.graph);
    const auto keys = random_domain_keys(codec, 60, 0xBEEFu);
    for (const Key& k : keys) {
      SymmetryGroup::ElemId wit = SymmetryGroup::kIdentity;
      const Key canon = grp.canonical(k, &wit);
      // The witness actually maps k to its representative.
      EXPECT_EQ(grp.apply(wit, k), canon);
      // Idempotence: a representative is its own representative, witnessed
      // by the identity.
      SymmetryGroup::ElemId wit2 = 0xFFFF;
      EXPECT_EQ(grp.canonical(canon, &wit2), canon);
      EXPECT_EQ(wit2, SymmetryGroup::kIdentity);
      // canon(apply(g, k)) == canon(k) for every group element (in
      // particular every generator).
      for (SymmetryGroup::ElemId e = 0; e < grp.size(); ++e) {
        EXPECT_EQ(grp.canonical(grp.apply(e, k)), canon);
      }
    }
  }
}

TEST(SymmetryGroup, OrbitSizesDivideGroupOrder) {
  for (const auto& inst : instances()) {
    const StateCodec codec(inst.graph, 0, inst.graph.num_nodes());
    const SymmetryGroup grp = make_group(codec, inst.graph);
    const auto keys = random_domain_keys(codec, 60, 0x0D1CEu);
    for (const Key& k : keys) {
      std::set<Key, KeyLess> orbit;
      for (SymmetryGroup::ElemId e = 0; e < grp.size(); ++e) {
        orbit.insert(grp.apply(e, k));
      }
      EXPECT_EQ(grp.size() % orbit.size(), 0u)
          << "orbit size " << orbit.size() << " does not divide |G|="
          << grp.size();
    }
  }
}

TEST(SymmetryGroup, PermuteMoveAndMaskAgree) {
  const graph::Graph g = graph::make_ring(5);
  const StateCodec codec(g, 0, g.num_nodes());
  const SymmetryGroup grp = make_group(codec, g);
  util::Xoshiro256 rng(7);
  constexpr std::uint32_t kActs = core::DinersSystem::kNumActions;
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t mask =
        rng.next() & ((std::uint64_t{1} << (5 * kActs)) - 1);
    const auto e =
        static_cast<SymmetryGroup::ElemId>(rng.next() % grp.size());
    const std::uint64_t pmask = grp.permute_mask(e, mask);
    for (std::uint16_t move = 0; move < 5 * kActs; ++move) {
      const std::uint16_t pmove = grp.permute_move(e, move);
      EXPECT_EQ((mask >> move) & 1, (pmask >> pmove) & 1)
          << "move " << move << " element " << e;
    }
    // Demonic and seed moves pass through.
    EXPECT_EQ(grp.permute_move(e, kDemonMoveBase + 3), kDemonMoveBase + 3);
    EXPECT_EQ(grp.permute_move(e, kSeedMove), kSeedMove);
  }
}

TEST(SymmetryGroup, ApplyCommutesWithDecodeRelabeling) {
  // Semantic anchor: decoding A_e(k) must equal decoding k and relabeling
  // the system by pi_e — checked on the per-process state and depth fields.
  const graph::Graph g = graph::make_ring(5);
  const StateCodec codec(g, 0, g.num_nodes());
  const SymmetryGroup grp = make_group(codec, g);
  core::DinersSystem sys_a(graph::make_ring(5), {});
  core::DinersSystem sys_b(graph::make_ring(5), {});
  const auto keys = random_domain_keys(codec, 30, 0xF00Du);
  for (const Key& k : keys) {
    for (SymmetryGroup::ElemId e = 0; e < grp.size(); ++e) {
      codec.decode(k, sys_a);
      codec.decode(grp.apply(e, k), sys_b);
      for (graph::NodeId p = 0; p < 5; ++p) {
        const auto q = grp.apply_node(e, p);
        EXPECT_EQ(sys_b.state(q), sys_a.state(p));
        EXPECT_EQ(sys_b.depth(q), sys_a.depth(p));
      }
    }
  }
}

TEST(SymmetryGroup, StabilizerFixesDistinguishedNode) {
  const graph::Graph g = graph::make_ring(6);
  const StateCodec codec(g, 0, g.num_nodes());
  const SymmetryGroup grp = make_group(codec, g);
  ASSERT_EQ(grp.size(), 12u);
  // Label node 2 differently (a dead victim): the stabilizer must fix it
  // pointwise and has order 2 (the reflection about node 2).
  std::vector<std::uint8_t> label(6, 1);
  label[2] = 0;
  const auto stab = grp.stabilizer(label);
  ASSERT_NE(stab, nullptr);
  EXPECT_EQ(stab->size(), 2u);
  for (SymmetryGroup::ElemId e = 0; e < stab->size(); ++e) {
    EXPECT_EQ(stab->apply_node(e, 2), 2u);
  }
}

TEST(SymmetryGroup, NodeOrbitsPartitionByRole) {
  const graph::Graph star = graph::make_star(5);
  const StateCodec codec(star, 0, star.num_nodes());
  const SymmetryGroup grp = make_group(codec, star);
  const auto orbits = grp.node_orbits();
  ASSERT_EQ(orbits.size(), 2u);  // hub, leaves
  EXPECT_EQ(orbits[0], (std::vector<graph::NodeId>{0}));
  EXPECT_EQ(orbits[1], (std::vector<graph::NodeId>{1, 2, 3, 4}));
}

TEST(SymmetryGroup, RejectsInvalidGenerators) {
  const graph::Graph g = graph::make_ring(4);
  const StateCodec codec(g, 0, g.num_nodes());
  // A permutation that is not an automorphism (swaps a non-edge into an
  // edge) must be rejected.
  EXPECT_THROW(SymmetryGroup(codec, {{1, 0, 2, 3}}), std::invalid_argument);
  // Wrong arity.
  EXPECT_THROW(SymmetryGroup(codec, {{0, 1, 2}}), std::invalid_argument);
}

}  // namespace
}  // namespace diners::verify
