// diners_bench — the perf-trajectory harness.
//
// Runs a curated quick suite over the repo's existing measurement binaries
// and aggregates the results into one stable-schema BENCH_*.json record
// (analysis/perf_trajectory.hpp documents the schema):
//
//   engine    BM_EngineStep[FullScan] n=64/192, BM_FlatEngineStep
//             n=192/1k/10k/100k/1M and the BM_FlatEngineSweep SIMD
//             guard-sweep rows (bench_figure1_actions,
//             --benchmark_format json)           -> ns/step, peak RSS
//   campaign  diners_sim --engine=flat ring n=10^6 corrupted start
//             to invariant I (the E1 protocol at full scale)
//                                               -> wall seconds
//   explorer  diners_mc --exhaustive --json on ring-4 and K4 at
//             jobs=1/4, plus --reduce=sym,por rows (ring-4 box,
//             ring-6 instance seeds)             -> states/sec
//   batch     BM_BatchTrials n=64 jobs=1/4 (bench_batch_runner)
//                                               -> trials/sec, speedup
//   chaos     diners_chaos ring-8 soak          -> mean recovery steps
//   service   diners_service --campaign ring-64 (live crash + restart
//             under socket load)                -> far-stratum impact p99
//                                                  ms + recovery steps
//
// Comparator mode (`--compare=BASELINE`) loads two records, prints the
// per-metric deltas, and exits 3 when any metric is worse than the
// baseline by more than --regress-threshold (direction-aware: ns/step
// regressions are increases, states/sec regressions are decreases).
// `--soft` downgrades the whole gate to a warning; `--soft-match=a,b`
// downgrades only the metrics whose names contain one of the given
// substrings (noisy ns/step timings) while everything else gates hard.
//
// Exit codes: 0 ok / within threshold, 1 a driven binary failed or its
// output did not parse, 2 usage error, 3 regression past threshold.
//
// Examples:
//   diners_bench --quick --git-rev=$(git rev-parse --short HEAD)
//   diners_bench --compare=BENCH_9.json --out=BENCH_10.json
//   diners_bench --compare=BENCH_10.json --out=BENCH_ci.json \
//                --soft-match=engine.step.,engine.e1.,service.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>

#include "analysis/perf_trajectory.hpp"
#include "util/flags.hpp"
#include "util/json_reader.hpp"
#include "util/table.hpp"

namespace {

namespace fs = std::filesystem;
using diners::analysis::BenchMetric;
using diners::analysis::BenchReport;
using diners::util::JsonValue;

constexpr int kDriverError = 1;
constexpr int kUsageError = 2;
constexpr int kRegression = 3;

struct UsageError : std::invalid_argument {
  using std::invalid_argument::invalid_argument;
};

struct DriverError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// POSIX-shell single-quotes `s` so paths survive word splitting.
std::string shq(const std::string& s) {
  std::string out = "'";
  for (const char c : s) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += "'";
  return out;
}

struct CommandResult {
  int exit_code = -1;
  std::string out;
};

/// Runs `cmd` under the shell, capturing stdout (stderr passes through).
CommandResult run_command(const std::string& cmd) {
  std::cerr << "+ " << cmd << "\n";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) throw DriverError("popen failed for: " + cmd);
  CommandResult result;
  char buf[4096];
  std::size_t got = 0;
  while ((got = fread(buf, 1, sizeof(buf), pipe)) > 0) {
    result.out.append(buf, got);
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

/// Runs `cmd`, requiring exit code 0.
CommandResult run_checked(const std::string& cmd) {
  CommandResult result = run_command(cmd);
  if (result.exit_code != 0) {
    throw DriverError("command exited " + std::to_string(result.exit_code) +
                      ": " + cmd);
  }
  return result;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path);
  if (!in) throw DriverError("cannot read " + path.string());
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Finds the entry in Google Benchmark's `benchmarks` array whose name is
/// exactly `name`.
const JsonValue& gbench_entry(const JsonValue& doc, const std::string& name) {
  for (const auto& b : doc.at("benchmarks").as_array()) {
    if (const auto* n = b.find("name"); n != nullptr && n->is_string() &&
        n->as_string() == name) {
      return b;
    }
  }
  throw DriverError("benchmark output has no entry named '" + name + "'");
}

// --- metric collectors -----------------------------------------------------

/// Engine ns/step: the object engine at n=64/192 (incremental vs the
/// pinned full-scan reference), the flat SoA substrate from n=192 up to
/// n=10^6, and the guard_block sweep in isolation (portable vs SIMD).
/// Sweep rows report ns per process (gbench times one full-system sweep);
/// large-n flat rows carry the measured peak RSS as a param so memory
/// growth is visible in the trajectory even though only time gates.
void collect_engine(BenchReport& report, const fs::path& bench_dir,
                    const fs::path& workdir) {
  const fs::path out = workdir / "engine.json";
  run_checked(shq((bench_dir / "bench_figure1_actions").string()) +
              " --benchmark_filter='^(BM_EngineStep(FullScan)?/n:(64|192)"
              "|BM_FlatEngineStep/n:(192|1024|10240|102400|1048576)"
              "|BM_FlatEngineSweep/simd:(0|1))$'"
              " --benchmark_out_format=json --benchmark_out=" +
              shq(out.string()) + " >&2");
  const JsonValue doc = diners::util::parse_json(read_file(out));
  const struct {
    const char* bench;
    const char* metric;
    const char* n;
    const char* scan;
    double per_items;  // divide real_time by this (1 = already per step)
    bool rss;          // attach the max_rss_bytes counter as a param
  } rows[] = {
      {"BM_EngineStep/n:64", "engine.step.n64.incremental", "64",
       "incremental", 1, false},
      {"BM_EngineStep/n:192", "engine.step.n192.incremental", "192",
       "incremental", 1, false},
      {"BM_EngineStepFullScan/n:64", "engine.step.n64.fullscan", "64",
       "fullscan", 1, false},
      {"BM_EngineStepFullScan/n:192", "engine.step.n192.fullscan", "192",
       "fullscan", 1, false},
      {"BM_FlatEngineStep/n:192", "engine.step.n192.flat", "192", "flat", 1,
       false},
      {"BM_FlatEngineStep/n:1024", "engine.step.n1k.flat", "1024", "flat", 1,
       false},
      {"BM_FlatEngineStep/n:10240", "engine.step.n10k.flat", "10240", "flat",
       1, false},
      {"BM_FlatEngineStep/n:102400", "engine.step.n100k.flat", "102400",
       "flat", 1, true},
      {"BM_FlatEngineStep/n:1048576", "engine.step.n1M.flat", "1048576",
       "flat", 1, true},
      {"BM_FlatEngineSweep/simd:0", "engine.step.n100k.flat.sweep", "102400",
       "sweep-portable", 102400, false},
      {"BM_FlatEngineSweep/simd:1", "engine.step.n100k.flat.simd", "102400",
       "sweep-simd", 102400, false},
  };
  for (const auto& row : rows) {
    const JsonValue& entry = gbench_entry(doc, row.bench);
    if (entry.at("time_unit").as_string() != "ns") {
      throw DriverError(std::string(row.bench) + ": unexpected time unit");
    }
    BenchMetric m;
    m.name = row.metric;
    m.value = entry.at("real_time").as_number() / row.per_items;
    m.unit = row.per_items == 1 ? "ns/step" : "ns/process";
    m.higher_is_better = false;
    m.params = {{"n", row.n}, {"scan", row.scan}, {"topology", "ring"}};
    if (row.rss) {
      const JsonValue* rss = entry.find("max_rss_bytes");
      if (rss == nullptr || !rss->is_number()) {
        throw DriverError(std::string(row.bench) + ": no max_rss_bytes");
      }
      m.params.emplace("max_rss_bytes",
                       std::to_string(static_cast<std::uint64_t>(
                           rss->as_number())));
    }
    report.metrics.push_back(std::move(m));
  }
}

/// Explorer throughput: exhaustive sound-threshold model check of ring-4
/// and K4 at jobs=1/4, states/sec from the diners_mc --json summary. The
/// explorer.reduced.* rows (append-only) run the same check under
/// --reduce=sym,por: ring-4 over the full depth box, ring-6 from instance
/// seeds (the box does not fit) with locality victims off so the metric
/// stays a pure healthy-graph throughput sample.
void collect_explorer(BenchReport& report, const fs::path& tools_dir,
                      const fs::path& workdir) {
  const struct {
    const char* metric;
    const char* topology;
    const char* n;
    const char* jobs;
    const char* extra;  // extra diners_mc flags, "" for the baseline rows
  } rows[] = {
      {"explorer.ring4.jobs1", "ring", "4", "1", ""},
      {"explorer.ring4.jobs4", "ring", "4", "4", ""},
      {"explorer.k4.jobs1", "complete", "4", "1", ""},
      {"explorer.k4.jobs4", "complete", "4", "4", ""},
      {"explorer.reduced.ring4.jobs1", "ring", "4", "1", " --reduce=sym,por"},
      {"explorer.reduced.ring6.jobs4", "ring", "6", "4",
       " --reduce=sym,por --seeds=instance --victims=none"},
  };
  for (const auto& row : rows) {
    const fs::path out =
        workdir / (std::string("mc_") + row.metric + ".json");
    run_checked(shq((tools_dir / "diners_mc").string()) +
                " --topology=" + row.topology + " --n=" + row.n +
                " --exhaustive --threshold=sound --jobs=" + row.jobs +
                row.extra + " --json=" + shq(out.string()) + " >&2");
    const JsonValue doc = diners::util::parse_json(read_file(out));
    if (doc.at("result").as_string() != "verified") {
      throw DriverError(std::string(row.metric) +
                        ": model check did not verify");
    }
    BenchMetric m;
    m.name = row.metric;
    m.value = doc.at("states_per_second").as_number();
    m.unit = "states/s";
    m.higher_is_better = true;
    m.params = {{"topology", row.topology},
                {"n", row.n},
                {"jobs", row.jobs},
                {"states", std::to_string(static_cast<std::uint64_t>(
                               doc.at("explored_states_total").as_number()))}};
    if (row.extra[0] != '\0') {
      m.params.emplace("reduce", doc.at("reduction").at("mode").as_string());
    }
    report.metrics.push_back(std::move(m));
  }
}

/// Batch-runner fan-out: trials/sec at jobs=1/4 plus the jobs=4 speedup
/// over the serial baseline (bounded by the machine's core count; ~1.0 on
/// a 1-core runner is the honest number).
void collect_batch(BenchReport& report, const fs::path& bench_dir,
                   const fs::path& workdir) {
  const fs::path out = workdir / "batch.json";
  run_checked(shq((bench_dir / "bench_batch_runner").string()) +
              " --benchmark_filter='^BM_BatchTrials/n:64/jobs:(1|4)'"
              " --benchmark_out_format=json --benchmark_out=" +
              shq(out.string()) + " >&2");
  const JsonValue doc = diners::util::parse_json(read_file(out));
  const auto find_row = [&](const std::string& jobs) -> const JsonValue& {
    // Explicit Iterations() settings show up as a /iterations: suffix in
    // some benchmark versions; match on the stable prefix.
    const std::string prefix = "BM_BatchTrials/n:64/jobs:" + jobs;
    for (const auto& b : doc.at("benchmarks").as_array()) {
      const auto* n = b.find("name");
      if (n != nullptr && n->is_string() &&
          (n->as_string() == prefix ||
           n->as_string().rfind(prefix + "/", 0) == 0)) {
        return b;
      }
    }
    throw DriverError("bench_batch_runner output lacks " + prefix);
  };
  for (const char* jobs : {"1", "4"}) {
    const JsonValue& entry = find_row(jobs);
    BenchMetric m;
    m.name = std::string("batch.n64.jobs") + jobs + ".trials_per_sec";
    m.value = entry.at("trials_per_sec").as_number();
    m.unit = "trials/s";
    m.higher_is_better = true;
    m.params = {{"n", "64"}, {"jobs", jobs}, {"topology", "ring"}};
    report.metrics.push_back(std::move(m));
  }
  BenchMetric speedup;
  speedup.name = "batch.n64.jobs4.speedup_vs_serial";
  speedup.value = find_row("4").at("speedup_vs_serial").as_number();
  speedup.unit = "x";
  speedup.higher_is_better = true;
  speedup.params = {{"n", "64"}, {"jobs", "4"}};
  report.metrics.push_back(std::move(speedup));
}

/// Chaos recovery: mean watchdog steps-to-reconvergence per clean round of
/// the deterministic ring-8 soak (fixed seed, bit-identical summary).
void collect_chaos(BenchReport& report, const fs::path& tools_dir) {
  const CommandResult run = run_checked(
      shq((tools_dir / "diners_chaos").string()) +
      " --rounds=60 --topology=ring --n=8 --trials=2 --seed=1 --incident=");
  const JsonValue doc = diners::util::parse_json(run.out);
  if (doc.at("incidents").as_number() != 0) {
    throw DriverError("chaos soak reported incidents; not a perf sample");
  }
  BenchMetric m;
  m.name = "chaos.ring8.recovery_steps_mean";
  m.value = doc.at("recovery_steps").at("mean").as_number();
  m.unit = "steps";
  m.higher_is_better = false;
  m.params = {{"topology", "ring"}, {"n", "8"}, {"rounds", "60"},
              {"trials", "2"}, {"seed", "1"}};
  report.metrics.push_back(std::move(m));
}

/// Service SLO sample: one live chaos campaign on ring-64 (crash + restart
/// of arbiter 0 under open-loop load through real sockets). Records the far
/// stratum's impact-window p99 grant latency — the number the SLO gates on —
/// and the watchdog's steps-to-reconvergence. Wall-clock, so noisier than
/// the simulated metrics; the campaign must still MEET the SLO to count as
/// a perf sample at all (run_checked enforces exit 0).
void collect_service(BenchReport& report, const fs::path& tools_dir,
                     const fs::path& workdir) {
  // sockaddr_un caps paths at ~107 bytes; keep the socket dir shallow.
  const fs::path socket_dir = workdir / "svc";
  fs::create_directories(socket_dir);
  const fs::path out = workdir / "service_slo.json";
  run_checked(shq((tools_dir / "diners_service").string()) +
              " --campaign --topology=ring --n=64 --victim=0"
              " --crash-at-ms=300 --restart-at-ms=900 --duration-ms=1500"
              " --clients=16 --rps=200 --deadline-ms=400 --hold-us=200"
              " --p99-budget-ms=400 --seed=1 --socket-dir=" +
              shq(socket_dir.string()) + " --out=" + shq(out.string()) +
              " >&2");
  const JsonValue doc = diners::util::parse_json(read_file(out));
  const JsonValue* far_impact = nullptr;
  for (const auto& slice : doc.at("slices").as_array()) {
    if (slice.at("phase").as_string() == "impact" &&
        slice.at("stratum").as_string() == "far") {
      far_impact = &slice;
    }
  }
  if (far_impact == nullptr || far_impact->at("granted").as_number() == 0) {
    throw DriverError("campaign SLO report has no far-stratum impact grants");
  }
  BenchMetric p99;
  p99.name = "service.p99_ttE.n64";
  p99.value = far_impact->at("p99_ms").as_number();
  p99.unit = "ms";
  p99.higher_is_better = false;
  p99.params = {{"topology", "ring"}, {"n", "64"}, {"phase", "impact"},
                {"stratum", "far"}, {"rps", "200"}, {"seed", "1"}};
  report.metrics.push_back(std::move(p99));

  BenchMetric recovery;
  recovery.name = "service.recovery.steps";
  recovery.value = doc.at("verdict").at("recovery_steps").as_number();
  recovery.unit = "steps";
  recovery.higher_is_better = false;
  recovery.params = {{"topology", "ring"}, {"n", "64"}, {"victim", "0"},
                     {"seed", "1"}};
  report.metrics.push_back(std::move(recovery));
}

/// E1 at full ROADMAP scale: one corrupted ring-10^6 trial driven to
/// invariant I through the flat engine (the E16 protocol, fixed seed).
/// Records wall seconds for the whole trial — construction, stepping, and
/// the periodic invariant checks — because that is the number a user of
/// `diners_sim` at n=10^6 actually waits for. steps-to-I and peak RSS ride
/// along as params; the trial must CONVERGE to count as a perf sample.
void collect_campaign(BenchReport& report, const fs::path& tools_dir,
                      const fs::path& workdir) {
  const fs::path out = workdir / "e1_n1m.json";
  run_checked(shq((tools_dir / "diners_sim").string()) +
              " --engine=flat --topology=ring --n=1048576"
              " --threshold=524288 --corrupt --trials=1 --jobs=1"
              " --steps=8000000 --check-every=65536 --seed=1 --json=" +
              shq(out.string()) + " >&2");
  const JsonValue doc = diners::util::parse_json(read_file(out));
  if (doc.at("schema").as_string() != "diners-sim-batch/v1") {
    throw DriverError("e1 campaign: unexpected diners_sim JSON schema");
  }
  if (doc.at("converged").as_number() != doc.at("trials").as_number()) {
    throw DriverError("e1 campaign did not converge; not a perf sample");
  }
  BenchMetric m;
  m.name = "engine.e1.n1M.seconds";
  m.value = doc.at("wall_seconds").as_number();
  m.unit = "s";
  m.higher_is_better = false;
  const auto u64_param = [&doc](const char* key) {
    return std::to_string(
        static_cast<std::uint64_t>(doc.at(key).as_number()));
  };
  m.params = {{"topology", "ring"},
              {"n", "1048576"},
              {"threshold", "524288"},
              {"check_every", "65536"},
              {"seed", "1"},
              {"steps_to_i", std::to_string(static_cast<std::uint64_t>(
                                 doc.at("steps_to_i").at("mean").as_number()))},
              {"max_rss_bytes", u64_param("max_rss_bytes")}};
  report.metrics.push_back(std::move(m));
}

// --- modes -----------------------------------------------------------------

void print_metrics(const BenchReport& report) {
  diners::util::Table t({"metric", "value", "unit"});
  for (const auto& m : report.metrics) {
    t.add_row({m.name, m.value, m.unit});
  }
  t.print(std::cout);
}

/// The directory holding this binary (via /proc/self/exe, falling back to
/// argv[0]); bench binaries default to the sibling ../bench directory.
fs::path exe_dir(const char* argv0) {
  std::error_code ec;
  fs::path self = fs::read_symlink("/proc/self/exe", ec);
  if (ec) self = fs::absolute(argv0);
  return self.parent_path();
}

int run_suite(const diners::util::Flags& flags, const char* argv0) {
  const fs::path tools_dir = flags.str("tools-dir").empty()
                                 ? exe_dir(argv0)
                                 : fs::path(flags.str("tools-dir"));
  const fs::path bench_dir = flags.str("bench-dir").empty()
                                 ? tools_dir.parent_path() / "bench"
                                 : fs::path(flags.str("bench-dir"));
  const auto require_dir = [](const char* what, const fs::path& path) {
    if (!fs::is_directory(path)) {
      throw UsageError(std::string(what) + " " + path.string() +
                       " does not exist (pass --tools-dir/--bench-dir)");
    }
  };
  require_dir("tools dir", tools_dir);
  require_dir("bench dir", bench_dir);

  const fs::path workdir = flags.str("workdir").empty()
                               ? fs::temp_directory_path() / "diners_bench"
                               : fs::path(flags.str("workdir"));
  fs::create_directories(workdir);

  BenchReport report;
  report.git_rev = flags.str("git-rev");
  report.label = flags.str("label");

  collect_engine(report, bench_dir, workdir);
  collect_campaign(report, tools_dir, workdir);
  collect_explorer(report, tools_dir, workdir);
  collect_batch(report, bench_dir, workdir);
  collect_chaos(report, tools_dir);
  collect_service(report, tools_dir, workdir);

  const std::string out_path = flags.str("out");
  std::ofstream out(out_path);
  if (!out) throw UsageError("cannot write --out file " + out_path);
  write_report(out, report);

  print_metrics(report);
  std::cout << report.metrics.size() << " metrics recorded to " << out_path;
  if (!report.git_rev.empty()) std::cout << " (rev " << report.git_rev << ")";
  std::cout << "\n";
  if (!flags.flag("keep-temp")) {
    std::error_code ec;
    fs::remove_all(workdir, ec);
  }
  return 0;
}

BenchReport load_report(const std::string& path) {
  try {
    return diners::analysis::parse_report(read_file(path));
  } catch (const std::invalid_argument& err) {
    throw UsageError(path + ": " + err.what());
  } catch (const DriverError& err) {
    throw UsageError(err.what());
  }
}

int run_compare(const diners::util::Flags& flags) {
  const double threshold = flags.f64("regress-threshold");
  if (threshold < 0) {
    throw UsageError("--regress-threshold must be non-negative");
  }
  const BenchReport baseline = load_report(flags.str("compare"));
  const BenchReport current = load_report(flags.str("out"));
  if (baseline.suite_version != current.suite_version) {
    std::cerr << "warning: suite_version differs (baseline "
              << baseline.suite_version << ", current "
              << current.suite_version << "); deltas may not be comparable\n";
  }

  const auto result = diners::analysis::compare_reports(baseline, current);
  const std::string soft_match = flags.str("soft-match");
  // Hard verdict ignores soft-matched metrics; they report but never gate.
  double hard_worst = 0.0;
  diners::util::Table t({"metric", "baseline", "current", "delta", "verdict"});
  for (const auto& d : result.deltas) {
    const bool soft = diners::analysis::metric_matches(d.name, soft_match);
    if (!soft) hard_worst = std::max(hard_worst, d.regression);
    char delta[32];
    std::snprintf(delta, sizeof(delta), "%+.1f%%", d.regression * 100.0);
    const char* verdict = d.regression <= threshold ? "ok"
                          : soft                    ? "SOFT"
                                                    : "REGRESSED";
    t.add_row({d.name, d.baseline, d.current, std::string(delta),
               std::string(verdict)});
  }
  t.print(std::cout);
  for (const auto& name : result.only_baseline) {
    std::cout << "dropped metric (baseline only): " << name << "\n";
  }
  for (const auto& name : result.only_current) {
    std::cout << "new metric (current only): " << name << "\n";
  }
  std::cout << "worst regression: ";
  std::printf("%+.1f%%", result.worst_regression * 100.0);
  std::cout << " (threshold " << threshold * 100.0 << "%; delta is "
            << "fraction worse in each metric's bad direction)\n";

  if (hard_worst > threshold) {
    if (flags.flag("soft")) {
      std::cout << "SOFT GATE: regression past threshold (reporting only)\n";
      return 0;
    }
    std::cout << "REGRESSION past threshold\n";
    return kRegression;
  }
  if (!result.within(threshold)) {
    std::cout << "soft-matched regression past threshold (reporting only)\n";
  } else {
    std::cout << "within threshold\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  diners::util::Flags flags;
  flags
      .define("quick", "true",
              "run the quick suite (engine, campaign, explorer, batch, "
              "chaos, service); currently the only suite")
      .define("out", "BENCH_10.json",
              "record path: written in run mode, the 'current' side in "
              "--compare mode")
      .define("compare", "",
              "baseline BENCH_*.json: compare --out against it instead of "
              "running the suite")
      .define("regress-threshold", "0.15",
              "fail --compare when any metric is worse than the baseline "
              "by more than this fraction")
      .define("soft", "false",
              "report regressions without failing (CI soft gate)")
      .define("soft-match", "",
              "comma list of name substrings whose regressions only warn "
              "(e.g. engine.step. for noisy ns/step timings)")
      .define("git-rev", "", "git revision recorded in the report")
      .define("label", "", "free-form label recorded in the report")
      .define("tools-dir", "",
              "directory with diners_mc/diners_chaos (default: this "
              "binary's directory)")
      .define("bench-dir", "",
              "directory with the bench_* binaries (default: ../bench "
              "relative to --tools-dir)")
      .define("workdir", "",
              "scratch directory for driven-binary JSON (default: a "
              "temp dir)")
      .define("keep-temp", "false", "keep the scratch directory");
  if (!flags.parse(argc, argv)) return kUsageError;

  try {
    if (!flags.str("compare").empty()) return run_compare(flags);
    if (!flags.flag("quick")) {
      throw UsageError("nothing to do: pick --quick or --compare=BASELINE");
    }
    return run_suite(flags, argv[0]);
  } catch (const UsageError& err) {
    std::cerr << "error: " << err.what() << "\n"
              << "run with --help for usage\n";
    return kUsageError;
  } catch (const diners::util::FlagError& err) {
    std::cerr << "error: " << err.what() << "\n"
              << "run with --help for usage\n";
    return kUsageError;
  } catch (const std::exception& err) {
    std::cerr << "error: " << err.what() << "\n";
    return kDriverError;
  }
}
