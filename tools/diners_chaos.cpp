// diners_chaos — chaos soak driver: indefinite fault–recovery campaigns
// with automated convergence verification, over every runtime backend.
//
// Each trial alternates randomized fault bursts (malicious crashes,
// restarts, state corruption, network garbage) with quiescent windows in
// which a watchdog must observe recovery (invariant I, progress, failure
// locality). Any watchdog failure is an incident: the campaign reports it,
// writes a structured incident file (replayable via `diners_sim --replay`
// where a ground-truth snapshot exists), and the tool exits 1.
//
// The JSON summary on stdout is bit-identical for any --jobs value (and,
// for the deterministic backends, across runs); wall timing goes to
// stderr. Exit codes: 0 clean, 1 incident(s), 2 usage error.
//
// Examples:
//   diners_chaos --rounds=200 --topology=ring --n=8
//   diners_chaos --backend=msgpass-unreliable --drop=0.01 --reorder=0.05
//   diners_chaos --backend=threaded --rounds=50 --trials=2
//   diners_chaos --mutate=no-fixdepth --corrupt-prob=1   # must exit 1
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <string>

#include "analysis/batch_runner.hpp"
#include "chaos/campaign.hpp"
#include "chaos/report.hpp"
#include "core/config.hpp"
#include "graph/graph.hpp"
#include "util/flags.hpp"
#include "util/parse.hpp"
#include "verify/mutation.hpp"

namespace {

/// Exit code 2: malformed user input (vs 1 for detected incidents).
constexpr int kUsageError = 2;

struct UsageError : std::invalid_argument {
  using std::invalid_argument::invalid_argument;
};

/// Probability flags must land in [0, 1]; anything else is a usage error.
double probability(const diners::util::Flags& flags, const std::string& name) {
  const double p = flags.f64(name);
  if (p < 0.0 || p > 1.0) {
    throw UsageError("--" + name + ": " + flags.str(name) +
                     " is not a probability in [0, 1]");
  }
  return p;
}

void print_summary(const diners::chaos::CampaignOptions& options,
                   const diners::chaos::CampaignBatchResult& result) {
  using diners::chaos::Backend;
  const bool deterministic = options.backend != Backend::kThreaded;
  diners::chaos::write_campaign_json(std::cout, options, result);
  std::cerr << "wall: " << result.wall_seconds << " s";
  if (!deterministic) {
    std::cerr << "; threaded meals (timing-dependent): "
              << result.total_meals << "; mean recovery polls: "
              << result.recovery_steps.mean();
  }
  std::cerr << "\n";
}

/// Validates that the incident path is writable *before* the campaign runs:
/// discovering an unwritable path only after hours of soaking would throw
/// the incident evidence away. Leaves no trace if the file did not already
/// exist. Throws UsageError (exit 2) on failure.
void require_incident_path_writable(const std::string& path) {
  if (path.empty()) return;
  const bool existed = static_cast<bool>(std::ifstream(path));
  std::ofstream probe(path, std::ios::app);
  if (!probe) {
    throw UsageError("cannot write incident report to --incident path: " +
                     path);
  }
  probe.close();
  if (!existed) std::remove(path.c_str());
}

int run(const diners::util::Flags& flags) {
  diners::chaos::CampaignOptions options;
  diners::analysis::BatchOptions batch;
  try {
    options.backend = diners::chaos::parse_backend(flags.str("backend"));
    options.mutation =
        diners::verify::parse_guard_mutation(flags.str("mutate"));
    options.topology = flags.str("topology");
    // All numeric flags go through the validated accessors: "123abc",
    // "-5", and out-of-range values (e.g. --topology-seed past 2^64-1)
    // must exit 2 with a message, never truncate or abort.
    options.n = flags.u32("n", 1, diners::graph::kNoNode - 1);
    options.gnp_p = probability(flags, "gnp-p");
    if (!flags.str("topology-seed").empty()) {
      options.topology_seed = diners::util::parse_u64(
          flags.str("topology-seed"), 0,
          std::numeric_limits<std::uint64_t>::max(), "--topology-seed");
    }
    options.config.diameter_override =
        diners::core::parse_threshold(flags.str("threshold"), options.n);
  } catch (const std::invalid_argument& err) {
    throw UsageError(err.what());
  }
  options.rounds = flags.u64("rounds", 1);
  options.max_crashes_per_burst = flags.u32("burst", 1);
  options.max_malicious_steps = flags.u32("malice");
  options.restart_probability = probability(flags, "restart-prob");
  options.global_corruption_probability = probability(flags, "corrupt-prob");
  options.process_corruption_probability =
      probability(flags, "process-corrupt-prob");
  options.watchdog.budget_steps = flags.u64("budget", 1);
  options.watchdog.check_every = flags.u64("check-every", 1);
  options.watchdog.progress_window = flags.u64("window");
  options.watchdog.locality_bound = flags.u32("locality");
  options.daemon = flags.str("daemon");
  options.fairness_bound = flags.u64("fairness");
  options.network_faults.drop = probability(flags, "drop");
  options.network_faults.duplicate = probability(flags, "duplicate");
  options.network_faults.reorder = probability(flags, "reorder");
  options.network_faults.delay = probability(flags, "delay");
  options.network_faults.corrupt = probability(flags, "net-corrupt");
  options.fault_phase_steps = flags.u64("fault-steps");
  options.poll_sleep_us = flags.u32("poll-us");
  if (options.mutation != diners::verify::GuardMutation::kNone &&
      options.backend != diners::chaos::Backend::kSharedMemory) {
    throw UsageError("--mutate applies to the shared-memory backend only");
  }

  batch.trials = flags.u64("trials", 1);
  batch.jobs = flags.u32("jobs", 1);
  batch.master_seed = flags.u64("seed");
  require_incident_path_writable(flags.str("incident"));

  const auto result = diners::chaos::run_campaign_batch(options, batch);
  print_summary(options, result);

  if (result.incidents == 0) return 0;
  const std::string path = flags.str("incident");
  if (result.first_incident && !path.empty()) {
    std::ofstream out(path);
    if (out) {
      diners::chaos::write_incident(out, *result.first_incident);
      std::cerr << "incident: " << result.first_incident->reason
                << "\nincident report written to " << path;
      if (result.first_incident->evidence) {
        std::cerr << " (replay with: diners_sim --replay=" << path << ")";
      }
      std::cerr << "\n";
    } else {
      std::cerr << "error: cannot write incident report to " << path << "\n";
    }
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  diners::util::Flags flags;
  flags.define("backend", "shared-memory",
               "shared-memory | msgpass | msgpass-unreliable | threaded")
      .define("topology", "ring",
              "ring|path|star|complete|grid|torus|tree|wheel|barbell|gnp|"
              "figure2")
      .define("n", "8", "number of philosophers")
      .define("gnp-p", "0.15", "edge probability for --topology=gnp")
      .define("topology-seed", "",
              "fix the seeded topology families (default: per-trial)")
      .define("threshold", "sound",
              "cycle threshold: paper | sound | <integer>")
      .define("rounds", "200", "fault-burst rounds per trial")
      .define("burst", "2", "max victims per burst (draw: 1 + below(burst))")
      .define("malice", "6", "max malicious pre-halt writes per victim")
      .define("restart-prob", "0.7", "per-round rejoin chance per dead process")
      .define("corrupt-prob", "0.05", "per-round global corruption chance")
      .define("process-corrupt-prob", "0.25",
              "per-round single-process corruption chance")
      .define("budget", "200000", "watchdog convergence budget (steps)")
      .define("check-every", "16", "watchdog check period (steps)")
      .define("window", "4096",
              "progress/locality window after convergence (0 = off)")
      .define("locality", "2", "failure-locality bound (paper: 2)")
      .define("daemon", "random",
              "round-robin | random | adversarial-age | biased")
      .define("fairness", "64", "engine weak-fairness bound")
      .define("mutate", "none",
              "guard mutation (none | no-fixdepth | greedy-enter); the "
              "watchdog must catch non-none ones")
      .define("drop", "0.01", "msgpass-unreliable: per-message drop chance")
      .define("duplicate", "0.01",
              "msgpass-unreliable: per-message duplication chance")
      .define("reorder", "0.05",
              "msgpass-unreliable: per-message reorder chance")
      .define("delay", "0.02",
              "msgpass-unreliable: per-message delay-by-k chance")
      .define("net-corrupt", "0.005",
              "msgpass-unreliable: bounded per-message corruption chance")
      .define("fault-steps", "1500",
              "msgpass: steps run under the burst network per round")
      .define("poll-us", "200", "threaded: snapshot poll interval (us)")
      .define("trials", "4", "independent campaigns")
      .define("jobs", "1", "worker threads for the trial fan-out")
      .define("seed", "1", "master seed (trial seeds derive from it)")
      .define("incident", "chaos_incident.txt",
              "incident report path (empty = don't write)");
  if (!flags.parse(argc, argv)) return kUsageError;
  try {
    return run(flags);
  } catch (const UsageError& err) {
    std::cerr << "error: " << err.what() << "\n"
              << "run with --help for usage\n";
    return kUsageError;
  } catch (const diners::util::FlagError& err) {
    std::cerr << "error: " << err.what() << "\n"
              << "run with --help for usage\n";
    return kUsageError;
  } catch (const std::exception& err) {
    std::cerr << "error: " << err.what() << "\n";
    return 1;
  }
}
