// diners_chaos — chaos soak driver: indefinite fault–recovery campaigns
// with automated convergence verification, over every runtime backend.
//
// Each trial alternates randomized fault bursts (malicious crashes,
// restarts, state corruption, network garbage) with quiescent windows in
// which a watchdog must observe recovery (invariant I, progress, failure
// locality). Any watchdog failure is an incident: the campaign reports it,
// writes a structured incident file (replayable via `diners_sim --replay`
// where a ground-truth snapshot exists), and the tool exits 1.
//
// The JSON summary on stdout is bit-identical for any --jobs value (and,
// for the deterministic backends, across runs); wall timing goes to
// stderr. Exit codes: 0 clean, 1 incident(s), 2 usage error.
//
// Examples:
//   diners_chaos --rounds=200 --topology=ring --n=8
//   diners_chaos --backend=msgpass-unreliable --drop=0.01 --reorder=0.05
//   diners_chaos --backend=threaded --rounds=50 --trials=2
//   diners_chaos --mutate=no-fixdepth --corrupt-prob=1   # must exit 1
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "analysis/batch_runner.hpp"
#include "chaos/campaign.hpp"
#include "core/config.hpp"
#include "util/flags.hpp"
#include "verify/mutation.hpp"

namespace {

/// Exit code 2: malformed user input (vs 1 for detected incidents).
constexpr int kUsageError = 2;

struct UsageError : std::invalid_argument {
  using std::invalid_argument::invalid_argument;
};

void print_summary(const diners::chaos::CampaignOptions& options,
                   const diners::chaos::CampaignBatchResult& result) {
  using diners::chaos::Backend;
  const bool msg = options.backend == Backend::kMsgReliable ||
                   options.backend == Backend::kMsgUnreliable;
  // The threaded backend's meal and poll counts depend on real-time
  // scheduling; they are reported on stderr instead so the JSON stays
  // bit-identical across runs and --jobs values.
  const bool deterministic = options.backend != Backend::kThreaded;
  std::cout << "{\n";
  std::cout << "  \"backend\": \"" << to_string(options.backend) << "\",\n";
  std::cout << "  \"topology\": \"" << options.topology << '/' << options.n
            << "\",\n";
  std::cout << "  \"trials\": " << result.trials << ",\n";
  std::cout << "  \"rounds\": " << result.rounds << ",\n";
  std::cout << "  \"incidents\": " << result.incidents << ",\n";
  std::cout << "  \"clean_trials\": " << result.clean_trials << ",\n";
  std::cout << "  \"crashes\": " << result.crashes << ",\n";
  std::cout << "  \"restarts\": " << result.restarts << ",\n";
  std::cout << "  \"corruptions\": " << result.corruptions;
  if (deterministic) {
    const auto& acc = result.recovery_steps;
    std::cout << ",\n  \"recovery_steps\": {\"count\": " << acc.count()
              << ", \"mean\": " << acc.mean() << ", \"stddev\": "
              << acc.stddev() << ", \"min\": " << acc.min() << ", \"max\": "
              << acc.max() << "},\n";
    std::cout << "  \"meals\": " << result.total_meals;
  }
  if (msg) {
    std::cout << ",\n  \"network\": {\"sent\": " << result.messages_sent
              << ", \"delivered\": " << result.messages_delivered
              << ", \"dropped\": " << result.messages_dropped
              << ", \"duplicated\": " << result.messages_duplicated
              << ", \"pending\": " << result.messages_pending << "}";
  }
  std::cout << "\n}\n";
  std::cerr << "wall: " << result.wall_seconds << " s";
  if (!deterministic) {
    std::cerr << "; threaded meals (timing-dependent): "
              << result.total_meals << "; mean recovery polls: "
              << result.recovery_steps.mean();
  }
  std::cerr << "\n";
}

int run(const diners::util::Flags& flags) {
  diners::chaos::CampaignOptions options;
  diners::analysis::BatchOptions batch;
  try {
    options.backend = diners::chaos::parse_backend(flags.str("backend"));
    options.mutation =
        diners::verify::parse_guard_mutation(flags.str("mutate"));
    options.topology = flags.str("topology");
    options.n = static_cast<diners::graph::NodeId>(flags.i64("n"));
    options.gnp_p = flags.f64("gnp-p");
    if (!flags.str("topology-seed").empty()) {
      options.topology_seed = std::stoull(flags.str("topology-seed"));
    }
    options.config.diameter_override =
        diners::core::parse_threshold(flags.str("threshold"), options.n);
  } catch (const std::invalid_argument& err) {
    throw UsageError(err.what());
  }
  options.rounds = static_cast<std::uint64_t>(flags.i64("rounds"));
  options.max_crashes_per_burst =
      static_cast<std::uint32_t>(flags.i64("burst"));
  options.max_malicious_steps =
      static_cast<std::uint32_t>(flags.i64("malice"));
  options.restart_probability = flags.f64("restart-prob");
  options.global_corruption_probability = flags.f64("corrupt-prob");
  options.process_corruption_probability =
      flags.f64("process-corrupt-prob");
  options.watchdog.budget_steps =
      static_cast<std::uint64_t>(flags.i64("budget"));
  options.watchdog.check_every =
      static_cast<std::uint64_t>(flags.i64("check-every"));
  options.watchdog.progress_window =
      static_cast<std::uint64_t>(flags.i64("window"));
  options.watchdog.locality_bound =
      static_cast<std::uint32_t>(flags.i64("locality"));
  options.daemon = flags.str("daemon");
  options.fairness_bound = static_cast<std::uint64_t>(flags.i64("fairness"));
  options.network_faults.drop = flags.f64("drop");
  options.network_faults.duplicate = flags.f64("duplicate");
  options.network_faults.reorder = flags.f64("reorder");
  options.network_faults.delay = flags.f64("delay");
  options.network_faults.corrupt = flags.f64("net-corrupt");
  options.fault_phase_steps =
      static_cast<std::uint64_t>(flags.i64("fault-steps"));
  options.poll_sleep_us = static_cast<std::uint32_t>(flags.i64("poll-us"));
  if (options.mutation != diners::verify::GuardMutation::kNone &&
      options.backend != diners::chaos::Backend::kSharedMemory) {
    throw UsageError("--mutate applies to the shared-memory backend only");
  }

  batch.trials = static_cast<std::uint64_t>(flags.i64("trials"));
  batch.jobs = static_cast<unsigned>(flags.i64("jobs"));
  batch.master_seed = static_cast<std::uint64_t>(flags.i64("seed"));

  const auto result = diners::chaos::run_campaign_batch(options, batch);
  print_summary(options, result);

  if (result.incidents == 0) return 0;
  const std::string path = flags.str("incident");
  if (result.first_incident && !path.empty()) {
    std::ofstream out(path);
    if (out) {
      diners::chaos::write_incident(out, *result.first_incident);
      std::cerr << "incident: " << result.first_incident->reason
                << "\nincident report written to " << path;
      if (result.first_incident->evidence) {
        std::cerr << " (replay with: diners_sim --replay=" << path << ")";
      }
      std::cerr << "\n";
    } else {
      std::cerr << "error: cannot write incident report to " << path << "\n";
    }
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  diners::util::Flags flags;
  flags.define("backend", "shared-memory",
               "shared-memory | msgpass | msgpass-unreliable | threaded")
      .define("topology", "ring",
              "ring|path|star|complete|grid|torus|tree|wheel|barbell|gnp|"
              "figure2")
      .define("n", "8", "number of philosophers")
      .define("gnp-p", "0.15", "edge probability for --topology=gnp")
      .define("topology-seed", "",
              "fix the seeded topology families (default: per-trial)")
      .define("threshold", "sound",
              "cycle threshold: paper | sound | <integer>")
      .define("rounds", "200", "fault-burst rounds per trial")
      .define("burst", "2", "max victims per burst (draw: 1 + below(burst))")
      .define("malice", "6", "max malicious pre-halt writes per victim")
      .define("restart-prob", "0.7", "per-round rejoin chance per dead process")
      .define("corrupt-prob", "0.05", "per-round global corruption chance")
      .define("process-corrupt-prob", "0.25",
              "per-round single-process corruption chance")
      .define("budget", "200000", "watchdog convergence budget (steps)")
      .define("check-every", "16", "watchdog check period (steps)")
      .define("window", "4096",
              "progress/locality window after convergence (0 = off)")
      .define("locality", "2", "failure-locality bound (paper: 2)")
      .define("daemon", "random",
              "round-robin | random | adversarial-age | biased")
      .define("fairness", "64", "engine weak-fairness bound")
      .define("mutate", "none",
              "guard mutation (none | no-fixdepth | greedy-enter); the "
              "watchdog must catch non-none ones")
      .define("drop", "0.01", "msgpass-unreliable: per-message drop chance")
      .define("duplicate", "0.01",
              "msgpass-unreliable: per-message duplication chance")
      .define("reorder", "0.05",
              "msgpass-unreliable: per-message reorder chance")
      .define("delay", "0.02",
              "msgpass-unreliable: per-message delay-by-k chance")
      .define("net-corrupt", "0.005",
              "msgpass-unreliable: bounded per-message corruption chance")
      .define("fault-steps", "1500",
              "msgpass: steps run under the burst network per round")
      .define("poll-us", "200", "threaded: snapshot poll interval (us)")
      .define("trials", "4", "independent campaigns")
      .define("jobs", "1", "worker threads for the trial fan-out")
      .define("seed", "1", "master seed (trial seeds derive from it)")
      .define("incident", "chaos_incident.txt",
              "incident report path (empty = don't write)");
  if (!flags.parse(argc, argv)) return kUsageError;
  try {
    return run(flags);
  } catch (const UsageError& err) {
    std::cerr << "error: " << err.what() << "\n";
    return kUsageError;
  } catch (const std::exception& err) {
    std::cerr << "error: " << err.what() << "\n";
    return 1;
  }
}
