// diners_load — open-loop load generator for a running diners service.
//
// Drives --clients client threads against the arbiter endpoints under
// --socket-dir at an aggregate --rps arrival rate and reports time-to-eat
// (grant latency) quantiles as JSON (schema diners-load/v1): overall
// p50/p99/p999 over raw latencies plus a per-client analysis::Histogram
// summary. Latency is measured from each request's *scheduled* arrival —
// the offered load never adapts to a slow or crashed service, so the
// numbers are free of coordinated omission.
//
// Exit codes: 0 if at least one request was granted (failures under chaos
// are data, not errors), 1 if the service granted nothing, 2 usage error.
//
// Example, against `diners_service --topology=ring --n=8 ... &`:
//   diners_load --socket-dir=/tmp --nodes=8 --clients=8 --rps=400 \
//       --duration-ms=2000 --out=load.json
#include <cstdio>
#include <fstream>
#include <iostream>

#include "analysis/stats.hpp"
#include "service/load.hpp"
#include "util/flags.hpp"
#include "util/json_writer.hpp"

namespace {

constexpr int kUsageError = 2;

struct UsageError : std::invalid_argument {
  using std::invalid_argument::invalid_argument;
};

/// Fails fast (exit 2) on an unwritable report path, leaving no trace if
/// the file did not already exist.
void require_writable(const std::string& path) {
  if (path.empty()) return;
  const bool existed = static_cast<bool>(std::ifstream(path));
  std::ofstream probe(path, std::ios::app);
  if (!probe) {
    throw UsageError("cannot write to --out path: " + path);
  }
  probe.close();
  if (!existed) std::remove(path.c_str());
}

void write_load_json(std::ostream& os,
                     const diners::service::LoadOptions& options,
                     const diners::service::LoadReport& report) {
  using diners::service::RequestOutcome;
  diners::util::JsonWriter w(os);
  w.begin_object();
  w.field("schema", "diners-load/v1");
  w.key("options").begin_object();
  w.field("nodes", static_cast<std::uint64_t>(options.num_nodes));
  w.field("clients", static_cast<std::uint64_t>(options.clients));
  w.field("rps", options.rps);
  w.field("deadline_ms", static_cast<std::uint64_t>(options.deadline_ms));
  w.field("hold_us", static_cast<std::uint64_t>(options.hold_us));
  w.field("seed", options.seed);
  w.end_object();

  std::uint64_t counts[4] = {0, 0, 0, 0};
  std::vector<double> latencies;
  // Per-client time-to-eat histograms: [0, deadline] covers every possible
  // grant latency, so nothing can overflow.
  std::vector<diners::analysis::Histogram> per_client(
      options.clients,
      diners::analysis::Histogram(0.0, options.deadline_ms, 128));
  for (const auto& rec : report.records) {
    ++counts[static_cast<std::size_t>(rec.outcome)];
    if (rec.outcome == RequestOutcome::kGranted ||
        rec.outcome == RequestOutcome::kRevoked) {
      latencies.push_back(rec.grant_latency_ms);
      per_client[rec.client].add(rec.grant_latency_ms);
    }
  }
  w.key("totals").begin_object();
  w.field("requests", static_cast<std::uint64_t>(report.records.size()));
  w.field("granted", counts[0]);
  w.field("timeouts", counts[1]);
  w.field("revoked", counts[2]);
  w.field("errors", counts[3]);
  w.field("reconnects", report.reconnects);
  w.field("wall_ms", report.wall_ms);
  w.end_object();
  w.key("time_to_eat_ms").begin_object();
  w.field("p50", diners::analysis::quantile(latencies, 0.50));
  w.field("p99", diners::analysis::quantile(latencies, 0.99));
  w.field("p999", diners::analysis::quantile(latencies, 0.999));
  w.end_object();
  w.key("per_client").begin_array();
  for (std::uint32_t i = 0; i < options.clients; ++i) {
    const auto& h = per_client[i];
    w.begin_object();
    w.field("client", static_cast<std::uint64_t>(i));
    w.field("node", static_cast<std::uint64_t>(i % options.num_nodes));
    w.field("granted", h.total());
    w.field("p50", h.quantile(0.50));
    w.field("p99", h.quantile(0.99));
    w.field("p999", h.quantile(0.999));
    w.end_object();
  }
  w.end_array();
  w.finish();
}

int run(const diners::util::Flags& flags) {
  diners::service::LoadOptions options;
  options.socket_dir = flags.str("socket-dir");
  if (options.socket_dir.empty()) {
    throw UsageError("--socket-dir must not be empty");
  }
  options.num_nodes = flags.u32("nodes", 1);
  options.clients = flags.u32("clients", 1);
  options.rps = flags.f64("rps");
  if (!(options.rps > 0.0)) throw UsageError("--rps must be positive");
  options.requests = flags.u64("requests");
  options.duration_ms = flags.u32("duration-ms", 1);
  options.deadline_ms = flags.u32("deadline-ms", 1);
  options.hold_us = flags.u32("hold-us");
  options.seed = flags.u64("seed");

  const std::string out_path = flags.str("out");
  require_writable(out_path);

  const auto report = diners::service::run_load(options);
  if (out_path.empty()) {
    write_load_json(std::cout, options, report);
  } else {
    std::ofstream out(out_path);
    write_load_json(out, options, report);
  }
  std::uint64_t granted = 0;
  for (const auto& rec : report.records) {
    if (rec.outcome == diners::service::RequestOutcome::kGranted) ++granted;
  }
  std::cerr << "load: " << report.records.size() << " requests, " << granted
            << " granted, " << report.reconnects << " reconnects, "
            << report.wall_ms << " ms\n";
  return granted > 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  diners::util::Flags flags;
  flags
      .define("socket-dir", "/tmp", "directory holding arbiter-<p>.sock")
      .define("nodes", "8", "number of arbiter endpoints")
      .define("clients", "8", "client threads (client i -> node i % nodes)")
      .define("rps", "200", "aggregate open-loop request rate")
      .define("requests", "0", "total requests (0: derive from duration)")
      .define("duration-ms", "2000", "load duration when --requests=0")
      .define("deadline-ms", "250", "per-request acquire deadline")
      .define("hold-us", "200", "critical-section dwell per grant")
      .define("seed", "1", "backoff jitter master seed")
      .define("out", "", "JSON report path (empty = stdout)");
  if (!flags.parse(argc, argv)) return kUsageError;
  try {
    return run(flags);
  } catch (const UsageError& err) {
    std::cerr << "error: " << err.what() << "\n"
              << "run with --help for usage\n";
    return kUsageError;
  } catch (const diners::util::FlagError& err) {
    std::cerr << "error: " << err.what() << "\n"
              << "run with --help for usage\n";
    return kUsageError;
  } catch (const std::exception& err) {
    std::cerr << "error: " << err.what() << "\n";
    return 1;
  }
}
