// diners_mc — bounded model checker and property-based verifier for the
// paper's theorems on small instances.
//
// Exhaustive mode enumerates the full reachable global state space under
// the nondeterministic daemon (by default from *every* state of the
// arbitrary-start box — Theorem 1's premise) and checks:
//
//   closure      no legitimate state steps outside I;
//   convergence  every weakly fair run reaches I (no stuck state, no
//                fair-feasible cycle outside I);
//   progress     no hungry process stays hungry forever on a fair run;
//   locality     for every victim, after a malicious crash (all possible
//                dying writes, interleaved arbitrarily — the demonic
//                victim), processes at distance > 2 neither keep an eating
//                violation nor starve (failure locality 2, Theorems 2/3).
//
// Random mode (--random N) runs seeded corrupted-start trials plus
// malicious-crash locality trials on instances too large to enumerate,
// with greedy trace shrinking of any failure (--shrink).
//
// Any violation is emitted as a shortest replayable counterexample
// (--cex=FILE), consumable by `diners_sim --replay=FILE`.
//
// Exit codes: 0 verified, 1 counterexample found, 2 usage error,
// 3 inconclusive (state cap hit).
//
// Examples:
//   diners_mc --topology=ring --n=4 --exhaustive
//   diners_mc --topology=figure2 --exhaustive
//   diners_mc --topology=ring --n=4 --exhaustive --mutate=no-fixdepth
//             --cex=trace.txt
//   diners_mc --topology=ring --n=8 --random=500 --shrink
#include <chrono>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/invariants.hpp"
#include "core/config.hpp"
#include "core/diners_system.hpp"
#include "core/figure2.hpp"
#include "core/serialize.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/flags.hpp"
#include "util/json_writer.hpp"
#include "verify/canonical.hpp"
#include "verify/counterexample.hpp"
#include "verify/explorer.hpp"
#include "verify/fuzz.hpp"
#include "verify/mutation.hpp"
#include "verify/properties.hpp"
#include "verify/symmetry.hpp"

namespace {

using diners::core::DinersConfig;
using diners::core::DinersSystem;
using diners::graph::NodeId;
namespace verify = diners::verify;

constexpr int kCounterexample = 1;
constexpr int kUsageError = 2;
constexpr int kInconclusive = 3;

struct UsageError : std::invalid_argument {
  using std::invalid_argument::invalid_argument;
};

diners::graph::Graph build_topology(const std::string& kind, NodeId n,
                                    std::uint64_t seed) {
  if (kind == "ring") return diners::graph::make_ring(n);
  if (kind == "line" || kind == "path") return diners::graph::make_path(n);
  if (kind == "star") return diners::graph::make_star(n);
  if (kind == "complete" || kind == "k4") {
    return diners::graph::make_complete(kind == "k4" ? 4 : n);
  }
  if (kind == "tree") return diners::graph::make_random_tree(n, seed);
  if (kind == "figure2") return diners::graph::make_figure2_topology();
  throw UsageError("unknown topology: " + kind);
}

/// Seconds elapsed since `t0`, formatted.
double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct CheckSet {
  bool closure = false;
  bool convergence = false;
  bool progress = false;
  bool locality = false;
};

/// Exhaustive-mode throughput accounting for the --json summary. Exploration
/// totals cover the healthy graph plus every demonic-victim re-exploration;
/// states_per_second is their ratio (exploration only, property checks and
/// seed construction excluded).
struct ExhaustiveStats {
  unsigned jobs = 1;
  std::uint64_t healthy_states = 0;
  std::uint64_t healthy_arcs = 0;
  std::uint32_t layers = 0;
  std::uint64_t legitimate = 0;
  std::uint64_t explored_states_total = 0;
  double explore_seconds = 0;
  double wall_seconds = 0;
  /// Reduction accounting, summed over the healthy exploration and every
  /// demonic-victim re-exploration.
  std::string reduce_mode = "none";
  verify::StateGraph::ReductionStats reduction;
};

void write_json_summary(std::ostream& os, const std::string& topology,
                        NodeId n, const std::string& mutation,
                        const ExhaustiveStats& s, int rc) {
  const char* result = rc == 0              ? "verified"
                       : rc == kInconclusive ? "inconclusive"
                                             : "counterexample";
  const double sps = s.explore_seconds > 0
                         ? static_cast<double>(s.explored_states_total) /
                               s.explore_seconds
                         : 0.0;
  // The shared writer escapes the user-controlled topology/mutation
  // strings — a topology name containing '"' or '\' must still produce
  // valid JSON.
  diners::util::JsonWriter w(os);
  w.begin_object();
  w.field("mode", "exhaustive");
  w.field("topology", topology);
  w.field("n", static_cast<std::uint64_t>(n));
  w.field("jobs", s.jobs);
  w.field("mutation", mutation);
  w.field("result", result);
  w.field("healthy_states", s.healthy_states);
  w.field("healthy_arcs", s.healthy_arcs);
  w.field("layers", static_cast<std::uint64_t>(s.layers));
  w.field("legitimate", s.legitimate);
  w.field("explored_states_total", s.explored_states_total);
  w.field("explore_seconds", s.explore_seconds);
  w.field("states_per_second", sps);
  w.field("wall_seconds", s.wall_seconds);
  // Appended in schema v2 (append-only: consumers of the fields above are
  // unaffected). canonical_hit_ratio is the fraction of generated successor
  // candidates that canonicalization rewrote to a different orbit
  // representative — 0 when --reduce has no sym, or the topology has no
  // label-preserving symmetry.
  const double hit_ratio =
      s.reduction.raw_candidates > 0
          ? static_cast<double>(s.reduction.canonical_hits) /
                static_cast<double>(s.reduction.raw_candidates)
          : 0.0;
  w.key("reduction");
  w.begin_object();
  w.field("mode", s.reduce_mode);
  w.field("raw_candidates", s.reduction.raw_candidates);
  w.field("canonical_hits", s.reduction.canonical_hits);
  w.field("canonical_hit_ratio", hit_ratio);
  w.field("por_ample_states", s.reduction.por_ample_states);
  w.field("por_arcs_pruned", s.reduction.por_arcs_pruned);
  w.end_object();
  w.finish();
}

CheckSet parse_checks(const std::string& csv) {
  CheckSet c;
  std::istringstream in(csv);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (token.empty()) continue;
    if (token == "all") {
      c.closure = c.convergence = c.progress = c.locality = true;
    } else if (token == "closure") {
      c.closure = true;
    } else if (token == "convergence") {
      c.convergence = true;
    } else if (token == "progress") {
      c.progress = true;
    } else if (token == "locality") {
      c.locality = true;
    } else {
      throw UsageError("bad --check token '" + token + "'");
    }
  }
  return c;
}

struct ReduceSet {
  bool sym = false;
  bool por = false;

  [[nodiscard]] std::string name() const {
    if (sym && por) return "sym,por";
    if (sym) return "sym";
    if (por) return "por";
    return "none";
  }
};

ReduceSet parse_reduce(const std::string& csv) {
  ReduceSet r;
  std::istringstream in(csv);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (token.empty() || token == "none") continue;
    if (token == "sym") {
      r.sym = true;
    } else if (token == "por") {
      r.por = true;
    } else {
      throw UsageError("bad --reduce token '" + token +
                       "' (want none|sym|por)");
    }
  }
  return r;
}

bool parse_compact(const std::string& text, const ReduceSet& reduce) {
  if (text == "auto") return reduce.sym || reduce.por;
  if (text == "on" || text == "true") return true;
  if (text == "off" || text == "false") return false;
  throw UsageError("bad --compact '" + text + "' (want auto|on|off)");
}

void accumulate(verify::StateGraph::ReductionStats& into,
                const verify::StateGraph::ReductionStats& from) {
  into.raw_candidates += from.raw_candidates;
  into.canonical_hits += from.canonical_hits;
  into.por_ample_states += from.por_ample_states;
  into.por_arcs_pruned += from.por_arcs_pruned;
}

std::pair<std::int64_t, std::int64_t> parse_depth_box(const std::string& text,
                                                      std::uint32_t d) {
  if (text.empty()) return {0, static_cast<std::int64_t>(d) + 1};
  const auto colon = text.find(':');
  if (colon == std::string::npos) {
    throw UsageError("bad --depth-box '" + text + "' (want MIN:MAX)");
  }
  try {
    std::size_t pos = 0;
    const std::int64_t lo = std::stoll(text.substr(0, colon), &pos);
    if (pos != colon) throw std::invalid_argument(text);
    const std::string hi_text = text.substr(colon + 1);
    const std::int64_t hi = std::stoll(hi_text, &pos);
    if (pos != hi_text.size() || hi < lo) throw std::invalid_argument(text);
    return {lo, hi};
  } catch (const std::exception&) {
    throw UsageError("bad --depth-box '" + text + "' (want MIN:MAX)");
  }
}

int report_counterexample(const verify::Counterexample& cex,
                          const DinersSystem& prototype,
                          const std::string& cex_path) {
  std::cout << "COUNTEREXAMPLE " << cex.property << ": " << cex.detail
            << "\n  " << cex.events.size() << " events (stem "
            << cex.stem_length << ", cycle "
            << cex.events.size() - cex.stem_length << ")\n";
  if (!cex_path.empty()) {
    std::ofstream out(cex_path);
    if (!out) {
      std::cerr << "error: cannot write " << cex_path << "\n";
      return kCounterexample;
    }
    verify::write_counterexample(out, prototype.topology(),
                                 prototype.config(), cex);
    std::cout << "  written to " << cex_path
              << " (replay with: diners_sim --replay=" << cex_path << ")\n";
  }
  return kCounterexample;
}

int run_exhaustive(const diners::util::Flags& flags,
                   DinersSystem& prototype, const verify::StateCodec& codec,
                   verify::GuardMutation mutation, const CheckSet& checks,
                   ExhaustiveStats& stats) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint32_t max_states = flags.u32("max-states", 1);
  const unsigned jobs = flags.u32("jobs", 1);
  stats.jobs = jobs;
  const ReduceSet reduce = parse_reduce(flags.str("reduce"));
  const bool compact = parse_compact(flags.str("compact"), reduce);
  stats.reduce_mode = reduce.name();
  std::string seeds_mode = flags.str("seeds");
  if (seeds_mode == "auto") {
    // figure2 is a pinned mid-run scenario; its arbitrary-start box is far
    // beyond enumeration, and the theorems' premise there is the drawn state.
    seeds_mode = flags.str("topology") == "figure2" ? "instance" : "box";
  }

  std::vector<verify::Key> seeds;
  if (seeds_mode == "box") {
    const std::uint64_t total = codec.domain_size();
    if (total > max_states) {
      std::cout << "INCONCLUSIVE: arbitrary-start box has " << total
                << " states > --max-states=" << max_states << "\n";
      return kInconclusive;
    }
    seeds.reserve(total);
    for (std::uint64_t i = 0; i < total; ++i) {
      seeds.push_back(codec.domain_key(i));
    }
  } else if (seeds_mode == "instance") {
    seeds.push_back(codec.encode(prototype));
  } else {
    throw UsageError("bad --seeds '" + seeds_mode + "' (want box|instance)");
  }

  DinersSystem scratch = diners::core::clone(prototype);
  verify::Explorer::Options opts;
  opts.mutation = mutation;
  opts.max_states = max_states;
  opts.jobs = jobs;
  opts.reduce_sym = reduce.sym;
  opts.reduce_por = reduce.por;
  opts.compact_visited = compact;
  // Box seeding knows the exact reachable count up front (the box is
  // closed under the protocol); instance seeding lets the explorer derive
  // its own hint. Under symmetry reduction the box count is an
  // overestimate of the canonical count — still a safe reserve hint.
  if (seeds_mode == "box") opts.expected_states = seeds.size();
  verify::Explorer explorer(scratch, codec, opts);
  const auto te0 = std::chrono::steady_clock::now();
  const verify::StateGraph healthy = explorer.explore(seeds);
  const double healthy_seconds = seconds_since(te0);
  stats.explore_seconds += healthy_seconds;
  stats.explored_states_total += healthy.num_states();
  accumulate(stats.reduction, healthy.reduction);
  stats.healthy_states = healthy.num_states();
  stats.healthy_arcs = healthy.succ.size();
  stats.layers = healthy.layers;
  if (!healthy.complete) {
    std::cout << "INCONCLUSIVE: hit --max-states=" << max_states << " ("
              << healthy.num_states() << " states explored)\n";
    return kInconclusive;
  }

  const auto inv = verify::label_invariant(healthy, codec, scratch);
  std::uint64_t legit = 0;
  for (const auto b : inv) legit += b;
  stats.legitimate = legit;
  std::cout << "explored " << healthy.num_states() << " states, "
            << healthy.succ.size() << " arcs, " << healthy.layers
            << " layers in " << seconds_since(t0) << " s ("
            << static_cast<std::uint64_t>(
                   healthy_seconds > 0
                       ? healthy.num_states() / healthy_seconds
                       : 0)
            << " states/s); " << legit << " legitimate\n";
  if (reduce.sym || reduce.por) {
    std::cout << "reduction " << reduce.name() << ": "
              << healthy.reduction.canonical_hits << "/"
              << healthy.reduction.raw_candidates
              << " candidates canonicalized, "
              << healthy.reduction.por_ample_states << " ample states ("
              << healthy.reduction.por_arcs_pruned << " arcs pruned)"
              << (healthy.sym ? "" : "; no nontrivial symmetry") << "\n";
  }

  // One representative per process orbit of the graph's symmetry group:
  // check_* verdicts for p cover every process some automorphism maps p
  // to, so the sibling checks are redundant. All-true when unreduced.
  const auto orbit_reps = [](const verify::StateGraph& sg, NodeId nn) {
    std::vector<std::uint8_t> rep(nn, 1);
    if (sg.sym != nullptr) {
      for (const auto& orb : sg.sym->node_orbits()) {
        for (std::size_t i = 1; i < orb.size(); ++i) rep[orb[i]] = 0;
      }
    }
    return rep;
  };

  const std::string cex_path = flags.str("cex");
  const auto fail = [&](std::optional<NodeId> victim,
                        const verify::StateGraph* crashed,
                        const verify::Violation& v) {
    return report_counterexample(
        verify::compose_counterexample(healthy, codec, prototype, victim,
                                       crashed, v),
        prototype, cex_path);
  };

  if (checks.closure) {
    if (const auto v = verify::check_closure(healthy, inv)) {
      return fail(std::nullopt, nullptr, *v);
    }
    std::cout << "closure: OK\n";
  }
  if (checks.convergence) {
    if (const auto v = verify::check_convergence(healthy, inv)) {
      return fail(std::nullopt, nullptr, *v);
    }
    std::cout << "convergence: OK\n";
  }
  if (checks.progress) {
    if (prototype.dead_processes().empty()) {
      // Individual progress for everyone holds only crash-free; with dead
      // processes present the locality check below covers the far ones (the
      // near ones are exactly what failure locality 2 permits to starve).
      const auto prep = orbit_reps(healthy, prototype.topology().num_nodes());
      for (NodeId p = 0; p < prototype.topology().num_nodes(); ++p) {
        if (prep[p] == 0) continue;
        if (const auto v = verify::check_no_starvation(healthy, codec, p)) {
          return fail(std::nullopt, nullptr, *v);
        }
      }
      std::cout << "progress: OK\n";
    } else {
      std::cout << "progress: skipped (instance has dead processes; see "
                   "locality)\n";
    }
  }

  if (checks.locality) {
    const auto& g = prototype.topology();
    const auto pre_dead = prototype.dead_processes();
    if (!pre_dead.empty()) {
      // The instance already carries a crash (e.g. figure2): analyse the
      // explored graph directly against its dead set.
      const auto dist = diners::graph::distances_to_set(
          g, std::span<const NodeId>(pre_dead));
      const auto far_bad =
          verify::label_far_violation(healthy, codec, scratch, dist, 2);
      if (const auto v = verify::check_far_safety(healthy, far_bad)) {
        return fail(std::nullopt, nullptr, *v);
      }
      const auto prep = orbit_reps(healthy, g.num_nodes());
      for (NodeId p = 0; p < g.num_nodes(); ++p) {
        if (!prototype.alive(p) || dist[p] <= 2 || !prototype.needs(p) ||
            prep[p] == 0) {
          continue;
        }
        if (const auto v = verify::check_no_starvation(healthy, codec, p)) {
          return fail(std::nullopt, nullptr, *v);
        }
      }
      std::cout << "locality(existing dead set): OK\n";
    }
    std::string victims_mode = flags.str("victims");
    if (victims_mode == "auto") {
      // An instance that already carries a crash (figure2) is checked
      // against its own dead set above; stacking a second demonic victim on
      // top goes beyond the theorems' single-scenario premise (and past any
      // reasonable state cap). Crash-free instances get every victim.
      victims_mode = pre_dead.empty() ? "each" : "none";
    }
    if (victims_mode != "each" && victims_mode != "none") {
      throw UsageError("bad --victims '" + victims_mode +
                       "' (want each|none|auto)");
    }
    // One victim per orbit of the healthy graph's symmetry group: crashing
    // π(v) produces a state graph isomorphic (via A_π) to crashing v, so
    // one demonic re-exploration covers the whole orbit.
    const auto vrep = orbit_reps(healthy, g.num_nodes());
    for (NodeId victim = 0;
         victims_mode == "each" && victim < g.num_nodes(); ++victim) {
      if (!prototype.alive(victim)) continue;
      if (vrep[victim] == 0) {
        std::cout << "locality(victim " << victim
                  << "): covered by its orbit representative\n";
        continue;
      }
      DinersSystem crashed_scratch = diners::core::clone(prototype);
      crashed_scratch.crash(victim);
      verify::Explorer::Options copts;
      copts.mutation = mutation;
      copts.max_states = max_states;
      copts.jobs = jobs;
      copts.expected_states = healthy.num_states();
      copts.demon_victim = victim;
      copts.reduce_sym = reduce.sym;
      copts.reduce_por = reduce.por;
      copts.compact_visited = compact;
      verify::Explorer demon(crashed_scratch, codec, copts);
      const auto tv0 = std::chrono::steady_clock::now();
      const verify::StateGraph crashed = demon.explore(healthy.keys);
      stats.explore_seconds += seconds_since(tv0);
      stats.explored_states_total += crashed.num_states();
      accumulate(stats.reduction, crashed.reduction);
      if (!crashed.complete) {
        std::cout << "INCONCLUSIVE: victim " << victim << " hit --max-states="
                  << max_states << "\n";
        return kInconclusive;
      }
      const auto dead = crashed_scratch.dead_processes();
      const auto dist = diners::graph::distances_to_set(
          g, std::span<const NodeId>(dead));
      const auto far_bad = verify::label_far_violation(crashed, codec,
                                                       crashed_scratch, dist,
                                                       2);
      if (const auto v = verify::check_far_safety(crashed, far_bad)) {
        return fail(victim, &crashed, *v);
      }
      const auto crep = orbit_reps(crashed, g.num_nodes());
      for (NodeId p = 0; p < g.num_nodes(); ++p) {
        if (!crashed_scratch.alive(p) || dist[p] <= 2 ||
            !crashed_scratch.needs(p) || crep[p] == 0) {
          continue;
        }
        if (const auto v = verify::check_no_starvation(crashed, codec, p)) {
          return fail(victim, &crashed, *v);
        }
      }
      std::cout << "locality(victim " << victim << "): OK, "
                << crashed.num_states() << " states\n";
    }
  }

  std::cout << "VERIFIED " << flags.str("topology")
            << " n=" << prototype.topology().num_nodes() << ": "
            << healthy.num_states() << " states, wall " << seconds_since(t0)
            << " s\n";
  return 0;
}

int run_random(const diners::util::Flags& flags, DinersSystem& prototype,
               verify::GuardMutation mutation) {
  const auto t0 = std::chrono::steady_clock::now();
  verify::FuzzOptions opts;
  opts.trials = flags.u64("random");
  opts.seed = flags.u64("seed");
  opts.steps = flags.u64("steps");
  opts.shrink = flags.flag("shrink");
  opts.mutation = mutation;
  opts.daemon = flags.str("daemon");
  opts.crashes = flags.u32("crashes");
  opts.malicious_steps = flags.u32("malicious-steps");

  const auto report =
      verify::run_fuzz(prototype.topology(), prototype.config(), opts);
  std::cout << report.trials_run << " trials, max steps-to-I "
            << report.stabilization_steps_max << ", wall "
            << seconds_since(t0) << " s\n";
  if (!report.ok) {
    if (report.cex) {
      return report_counterexample(*report.cex, prototype, flags.str("cex"));
    }
    std::cout << "COUNTEREXAMPLE " << report.detail << " (seed "
              << report.failing_seed << ")\n";
    return kCounterexample;
  }
  std::cout << "VERIFIED random " << flags.str("topology")
            << " n=" << prototype.topology().num_nodes() << ": "
            << report.trials_run << " trials clean\n";
  return 0;
}

int run(const diners::util::Flags& flags) {
  const NodeId n = flags.u32("n", 1, diners::graph::kNoNode - 1);
  const std::uint64_t seed = flags.u64("seed");
  const std::string topo = flags.str("topology");
  auto g = build_topology(topo, n, seed);

  verify::GuardMutation mutation = verify::GuardMutation::kNone;
  DinersConfig cfg;
  try {
    mutation = verify::parse_guard_mutation(flags.str("mutate"));
    cfg.diameter_override =
        diners::core::parse_threshold(flags.str("threshold"), g.num_nodes());
  } catch (const std::invalid_argument& err) {
    throw UsageError(err.what());
  }

  // figure2 is a pinned scenario (fixed appetite, a crashed mid-meal);
  // everything else starts clean with saturation appetite. The scenario
  // state is carried over by snapshot so --threshold still applies.
  DinersSystem prototype(std::move(g), cfg);
  if (topo == "figure2") {
    diners::core::restore(
        prototype, diners::core::capture(diners::core::make_figure2_system()));
  } else {
    for (NodeId p = 0; p < prototype.topology().num_nodes(); ++p) {
      prototype.set_needs(p, true);
    }
  }

  const std::uint32_t d = prototype.config().diameter_override
                              ? *prototype.config().diameter_override
                              : diners::graph::diameter(prototype.topology());
  const auto [dmin, dmax] = parse_depth_box(flags.str("depth-box"), d);
  const verify::StateCodec codec(prototype.topology(), dmin, dmax);

  const bool exhaustive = flags.flag("exhaustive");
  const std::uint64_t random_trials = flags.u64("random");
  if (!exhaustive && random_trials == 0) {
    throw UsageError("pick a mode: --exhaustive and/or --random=N");
  }

  std::cout << "instance " << topo
            << " n=" << prototype.topology().num_nodes() << " D=" << d
            << " depth-box=" << dmin << ":" << dmax << " mutation="
            << verify::to_string(mutation) << "\n";
  if (exhaustive) {
    const CheckSet checks = parse_checks(flags.str("check"));
    ExhaustiveStats stats;
    const auto tx0 = std::chrono::steady_clock::now();
    const int rc =
        run_exhaustive(flags, prototype, codec, mutation, checks, stats);
    stats.wall_seconds = seconds_since(tx0);
    const std::string json_path = flags.str("json");
    if (!json_path.empty()) {
      const auto write = [&](std::ostream& os) {
        write_json_summary(os, topo, prototype.topology().num_nodes(),
                           std::string(verify::to_string(mutation)), stats,
                           rc);
      };
      if (json_path == "-") {
        write(std::cout);
      } else {
        std::ofstream out(json_path);
        if (!out) throw UsageError("cannot write --json file " + json_path);
        write(out);
      }
    }
    if (rc != 0) return rc;
  }
  if (random_trials > 0) {
    const int rc = run_random(flags, prototype, mutation);
    if (rc != 0) return rc;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  diners::util::Flags flags;
  flags.define("topology", "ring", "ring|line|path|star|complete|k4|tree|figure2")
      .define("n", "4", "system size")
      .define("seed", "1", "rng seed (random mode, tree topology)")
      .define("threshold", "paper",
              "cycle threshold: paper (=diameter) | sound (=n-1) | <int>")
      .define("exhaustive", "false", "enumerate the reachable state space")
      .define("random", "0", "run this many randomized trials")
      .define("shrink", "false", "greedily shrink random-mode failures")
      .define("depth-box", "", "depth abstraction box MIN:MAX (default 0:D+1)")
      .define("mutate", "none",
              "deliberately broken guard: none|no-fixdepth|greedy-enter")
      .define("check", "all",
              "comma list of closure|convergence|progress|locality|all")
      .define("max-states", "4000000",
              "exploration state cap (exact; counts canonical states under "
              "--reduce=sym)")
      .define("reduce", "none",
              "state-space reductions, comma list of sym (symmetry/orbit "
              "canonicalization) and por (ample-set partial order "
              "reduction, crash-free graphs only) | none")
      .define("compact", "auto",
              "bit-packed visited-set pages: auto (on when --reduce is "
              "active) | on | off")
      .define("jobs", "1",
              "exploration worker threads (sharded parallel BFS; the "
              "explored graph is identical for every value)")
      .define("json", "",
              "write a machine-readable exhaustive-mode summary (with "
              "states_per_second) to this file; '-' = stdout")
      .define("victims", "auto",
              "locality crash victims: each | none | auto (each unless the "
              "instance already has dead processes)")
      .define("cex", "", "write the first counterexample to this file")
      .define("seeds", "auto",
              "exhaustive start set: box (all 3^n*depth^n*2^m states) | "
              "instance (the configured start state) | auto")
      .define("daemon", "random", "random-mode daemon")
      .define("steps", "0", "random-mode steps per trial (0 = 64*n*n)")
      .define("crashes", "1", "random-mode victims per locality trial")
      .define("malicious-steps", "3",
              "random-mode dying writes per malicious crash");
  if (!flags.parse(argc, argv)) return kUsageError;

  try {
    return run(flags);
  } catch (const UsageError& err) {
    std::cerr << "error: " << err.what() << "\n"
              << "run with --help for usage\n";
    return kUsageError;
  } catch (const diners::util::FlagError& err) {
    std::cerr << "error: " << err.what() << "\n"
              << "run with --help for usage\n";
    return kUsageError;
  } catch (const std::exception& err) {
    std::cerr << "error: " << err.what() << "\n";
    return 1;
  }
}
