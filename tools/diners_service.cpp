// diners_service — the diners lock/lease arbiter service CLI.
//
// Two modes:
//
//   serve (default): bind one arbiter endpoint per philosopher under
//     --socket-dir and arbitrate critical-section entry for external
//     clients (e.g. diners_load) until --duration-ms elapses.
//
//   --campaign: run a full live chaos campaign in-process — service up,
//     open-loop load on, malicious crash of --victim mid-load, restart,
//     convergence watchdog, SLO report stratified by graph distance from
//     the victim (schema diners-slo/v1) to --out or stdout. The tool's
//     verdict is the failure-locality SLO: clients at distance >=
//     --far-distance must hold their p99 through the crash, and the
//     protocol must reconverge within the watchdog budget.
//
// Exit codes: 0 clean / SLO met, 1 SLO violated, 2 usage error.
//
// Examples:
//   diners_service --topology=ring --n=8 --duration-ms=5000 &
//   diners_service --campaign --topology=ring --n=16 --victim=0 \
//       --rps=400 --out=slo.json
#include <cstdio>
#include <fstream>
#include <iostream>
#include <thread>

#include "core/config.hpp"
#include "graph/generators.hpp"
#include "service/arbiter.hpp"
#include "service/live_campaign.hpp"
#include "util/flags.hpp"

namespace {

constexpr int kUsageError = 2;

struct UsageError : std::invalid_argument {
  using std::invalid_argument::invalid_argument;
};

double probability(const diners::util::Flags& flags, const std::string& name) {
  const double p = flags.f64(name);
  if (p < 0.0 || p > 1.0) {
    throw UsageError("--" + name + ": " + flags.str(name) +
                     " is not a probability in [0, 1]");
  }
  return p;
}

/// Validates that `path` is creatable/appendable *now*, so a long campaign
/// cannot end by discovering an unwritable report path. Leaves no trace if
/// the file did not already exist.
void require_writable(const std::string& path) {
  if (path.empty()) return;
  const bool existed = static_cast<bool>(std::ifstream(path));
  std::ofstream probe(path, std::ios::app);
  if (!probe) {
    throw UsageError("cannot write to --out path: " + path);
  }
  probe.close();
  if (!existed) std::remove(path.c_str());
}

int run(const diners::util::Flags& flags) {
  diners::service::LiveCampaignOptions options;
  try {
    options.graph = diners::graph::make_named(
        flags.str("topology"), flags.u32("n", 1), flags.u64("seed"),
        flags.f64("gnp-p"));
    options.config.diameter_override = diners::core::parse_threshold(
        flags.str("threshold"), flags.u32("n", 1));
  } catch (const std::invalid_argument& err) {
    throw UsageError(err.what());
  }
  options.socket_dir = flags.str("socket-dir");
  if (options.socket_dir.empty()) {
    throw UsageError("--socket-dir must not be empty");
  }
  options.mp.seed = flags.u64("seed");
  options.mp.network_faults.drop = probability(flags, "drop");
  options.mp.network_faults.duplicate = probability(flags, "duplicate");
  options.mp.network_faults.reorder = probability(flags, "reorder");
  options.mp.network_faults.delay = probability(flags, "delay");
  options.steps_per_poll = flags.u32("steps-per-poll", 1);

  if (!flags.flag("campaign")) {
    // Serve mode: stand up the arbiters and hold the door open.
    diners::service::ServiceOptions sopts;
    sopts.socket_dir = options.socket_dir;
    sopts.config = options.config;
    sopts.mp = options.mp;
    sopts.steps_per_poll = options.steps_per_poll;
    diners::service::ServiceHost host(options.graph, sopts);
    host.start();
    std::cerr << "serving " << options.graph.num_nodes()
              << " arbiters under " << options.socket_dir << "\n";
    std::this_thread::sleep_for(
        std::chrono::milliseconds(flags.u64("duration-ms")));
    host.stop();
    const auto stats = host.stats();
    std::cerr << "served: " << stats.grants << " grants, " << stats.accepted
              << " connections, " << stats.steps << " protocol steps\n";
    return 0;
  }

  const std::string out_path = flags.str("out");
  require_writable(out_path);

  options.victim = flags.u32("victim");
  if (options.victim >= options.graph.num_nodes()) {
    throw UsageError("--victim is not a node of the topology");
  }
  options.malice = flags.u32("malice");
  options.crash_at_ms = flags.f64("crash-at-ms");
  options.restart_at_ms = flags.f64("restart-at-ms");
  if (options.restart_at_ms <= options.crash_at_ms) {
    throw UsageError("--restart-at-ms must be after --crash-at-ms");
  }
  options.load.clients = flags.u32("clients", 1);
  options.load.rps = flags.f64("rps");
  if (!(options.load.rps > 0.0)) {
    throw UsageError("--rps must be positive");
  }
  options.load.duration_ms = flags.u32("duration-ms", 1);
  options.load.deadline_ms = flags.u32("deadline-ms", 1);
  options.load.hold_us = flags.u32("hold-us");
  options.load.seed = flags.u64("seed");
  options.watchdog.budget_steps = flags.u64("budget", 1);
  options.p99_budget_ms = flags.f64("p99-budget-ms");
  options.far_distance = flags.u32("far-distance");

  const auto result = diners::service::run_live_campaign(options);
  if (out_path.empty()) {
    diners::service::write_slo_json(std::cout, result.slo);
  } else {
    std::ofstream out(out_path);
    diners::service::write_slo_json(out, result.slo);
  }
  std::cerr << "campaign: " << result.load.records.size() << " requests, "
            << result.service.grants << " grants, "
            << result.service.revocations << " revocations, "
            << result.load.reconnects << " reconnects; recovery "
            << (result.slo.recovered ? "converged" : "FAILED") << " in "
            << result.slo.recovery_steps << " steps; SLO "
            << (result.slo.slo_ok() ? "met" : "VIOLATED") << "\n";
  return result.slo.slo_ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  diners::util::Flags flags;
  flags
      .define("topology", "ring",
              "ring|path|star|complete|grid|torus|tree|wheel|barbell|gnp|"
              "figure2")
      .define("n", "8", "number of philosophers / arbiter endpoints")
      .define("gnp-p", "0.15", "edge probability for --topology=gnp")
      .define("threshold", "sound", "cycle threshold: paper | sound | <int>")
      .define("socket-dir", "/tmp", "directory for arbiter-<p>.sock files")
      .define("seed", "1", "protocol / jitter master seed")
      .define("steps-per-poll", "512", "protocol steps per event-loop pass")
      .define("duration-ms", "2000", "serve/load duration")
      .define("drop", "0", "inter-arbiter link: per-message drop chance")
      .define("duplicate", "0",
              "inter-arbiter link: per-message duplication chance")
      .define("reorder", "0", "inter-arbiter link: per-message reorder chance")
      .define("delay", "0", "inter-arbiter link: per-message delay-by-k chance")
      .define("campaign", "false",
              "run the live chaos campaign instead of serving")
      .define("victim", "0", "campaign: arbiter to maliciously crash")
      .define("malice", "8", "campaign: garbage messages at crash time")
      .define("crash-at-ms", "500", "campaign: crash time offset")
      .define("restart-at-ms", "1500", "campaign: restart time offset")
      .define("clients", "8", "campaign: concurrent load clients")
      .define("rps", "200", "campaign: aggregate open-loop request rate")
      .define("deadline-ms", "250", "campaign: per-request acquire deadline")
      .define("hold-us", "200", "campaign: critical-section dwell per grant")
      .define("budget", "200000", "campaign: watchdog convergence budget")
      .define("p99-budget-ms", "250",
              "campaign: far-stratum p99 grant-latency budget")
      .define("far-distance", "3",
              "campaign: distance at which clients count as far")
      .define("out", "", "campaign: SLO JSON path (empty = stdout)");
  if (!flags.parse(argc, argv)) return kUsageError;
  try {
    return run(flags);
  } catch (const UsageError& err) {
    std::cerr << "error: " << err.what() << "\n"
              << "run with --help for usage\n";
    return kUsageError;
  } catch (const diners::util::FlagError& err) {
    std::cerr << "error: " << err.what() << "\n"
              << "run with --help for usage\n";
    return kUsageError;
  } catch (const std::exception& err) {
    std::cerr << "error: " << err.what() << "\n";
    return 1;
  }
}
