// diners_sim — command-line driver for the simulation substrate.
//
// Runs the paper's algorithm (or a baseline/ablation) on a chosen topology
// under a chosen daemon and fault schedule, and reports per-process and
// aggregate results, optionally as CSV time series.
//
// Examples:
//   diners_sim --topology=ring --n=24 --steps=50000
//   diners_sim --topology=grid --n=36 --crash=1000:7:32 --crash=2000:20:0
//   diners_sim --algorithm=chandy-misra --topology=path --n=16
//   diners_sim --threshold=sound --workload=random-toggle --csv
//   diners_sim --trials=200 --jobs=4 --corrupt --topology=gnp --n=48
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "algorithms/chandy_misra.hpp"
#include "algorithms/ordered_resource.hpp"
#include "analysis/batch_runner.hpp"
#include "analysis/harness.hpp"
#include "analysis/invariants.hpp"
#include "analysis/dot_export.hpp"
#include "analysis/red_green.hpp"
#include "core/diners_system.hpp"
#include "fault/injector.hpp"
#include "fault/workload.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "core/serialize.hpp"
#include "runtime/engine.hpp"
#include "util/flags.hpp"
#include "verify/counterexample.hpp"
#include "util/json_writer.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

#include <sys/resource.h>

namespace {

using diners::core::DinersConfig;
using diners::core::DinersSystem;
using diners::graph::NodeId;

diners::graph::Graph build_topology(const std::string& kind, NodeId n,
                                    std::uint64_t seed) {
  if (kind == "ring") return diners::graph::make_ring(n);
  if (kind == "path") return diners::graph::make_path(n);
  if (kind == "star") return diners::graph::make_star(n);
  if (kind == "complete") return diners::graph::make_complete(n);
  if (kind == "grid") return diners::graph::make_grid(n / 4 ? n / 4 : 1, 4);
  if (kind == "torus") return diners::graph::make_torus(n / 4 ? n / 4 : 3, 4);
  if (kind == "tree") return diners::graph::make_random_tree(n, seed);
  if (kind == "wheel") return diners::graph::make_wheel(n);
  if (kind == "barbell") return diners::graph::make_barbell(n / 2, 2);
  if (kind == "gnp") return diners::graph::make_connected_gnp(n, 0.1, seed);
  if (kind == "figure2") return diners::graph::make_figure2_topology();
  throw std::invalid_argument("unknown topology: " + kind);
}

/// Exit code 2: malformed user input (vs 1 for runtime failures).
constexpr int kUsageError = 2;

/// Thrown for malformed flag values; main() turns it into a friendly
/// message plus exit code 2.
struct UsageError : std::invalid_argument {
  using std::invalid_argument::invalid_argument;
};

diners::sim::EngineKind parse_engine(const std::string& name) {
  if (name == "object") return diners::sim::EngineKind::kObject;
  if (name == "flat") return diners::sim::EngineKind::kFlat;
  throw UsageError("unknown engine: " + name + " (object | flat)");
}

struct EngineJobs {
  unsigned rebuild = 1;
  unsigned step = 1;
};

/// Resolves --rebuild-jobs / --step-jobs, honoring the deprecated
/// --engine-jobs alias (it historically named the rebuild shards; an
/// explicit --rebuild-jobs wins over the alias).
EngineJobs parse_engine_jobs(const diners::util::Flags& flags) {
  EngineJobs jobs;
  jobs.rebuild = flags.u32("rebuild-jobs", 1);
  jobs.step = flags.u32("step-jobs", 1);
  if (flags.provided("engine-jobs")) {
    std::cerr << "warning: --engine-jobs is deprecated; use --rebuild-jobs "
                 "(full-rebuild shards) and --step-jobs (in-step shards)\n";
    if (!flags.provided("rebuild-jobs")) {
      jobs.rebuild = flags.u32("engine-jobs", 1);
    }
  }
  return jobs;
}

/// Peak resident set of this process, in bytes (Linux ru_maxrss is KiB).
std::uint64_t peak_rss_bytes() {
  struct rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
}

int run_diners(const diners::util::Flags& flags) {
  const NodeId n = flags.u32("n", 1, diners::graph::kNoNode - 1);
  const std::uint64_t seed = flags.u64("seed");
  const std::uint64_t steps = flags.u64("steps");
  auto g = build_topology(flags.str("topology"), n, seed);

  DinersConfig cfg;
  // Validated inputs: a typo'd --threshold or --crash must produce a usage
  // message and exit code 2, not an uncaught std::stoul abort.
  std::vector<diners::fault::CrashEvent> events;
  try {
    cfg.diameter_override =
        diners::core::parse_threshold(flags.str("threshold"), g.num_nodes());
    // Repeated --crash flags aren't supported by the tiny parser; accept a
    // comma-separated list instead.
    events = diners::fault::parse_crash_list(flags.str("crash"));
  } catch (const std::invalid_argument& err) {
    throw UsageError(err.what());
  }
  for (const auto& e : events) {
    if (e.process >= g.num_nodes()) {
      throw UsageError("bad crash spec: victim " + std::to_string(e.process) +
                       " is out of range for n = " +
                       std::to_string(g.num_nodes()));
    }
  }
  cfg.enable_dynamic_threshold = !flags.flag("no-threshold");
  cfg.enable_cycle_breaking = !flags.flag("no-cycle-breaking");

  DinersSystem system(std::move(g), cfg);
  if (flags.flag("corrupt")) {
    diners::util::Xoshiro256 rng(seed);
    diners::fault::corrupt_global_state(system, rng);
  }

  diners::analysis::HarnessOptions options;
  options.daemon = flags.str("daemon");
  options.seed = seed;
  options.engine_kind = parse_engine(flags.str("engine"));
  const EngineJobs engine_jobs = parse_engine_jobs(flags);
  options.rebuild_jobs = engine_jobs.rebuild;
  options.step_jobs = engine_jobs.step;
  std::unique_ptr<diners::fault::Workload> workload;
  if (flags.str("workload") != "none") {
    workload = diners::fault::make_workload(flags.str("workload"), seed);
  }
  diners::analysis::ExperimentHarness harness(
      system, std::move(workload),
      diners::fault::CrashPlan(std::move(events)), options);

  const bool csv = flags.flag("csv");
  const bool dot = flags.flag("dot");
  // sample = 0 would make the chunked loop below spin forever.
  const std::uint64_t sample = flags.u64("sample", 1);
  if (csv) std::cout << "step,total_meals,violations,invariant\n";
  std::uint64_t done = 0;
  while (done < steps) {
    const auto chunk = std::min<std::uint64_t>(sample, steps - done);
    const auto result = harness.run(chunk);
    done += result.steps_executed;
    if (csv) {
      std::cout << done << ',' << system.total_meals() << ','
                << diners::analysis::eating_violation_count(system) << ','
                << (diners::analysis::holds_invariant(system) ? 1 : 0)
                << '\n';
    }
    if (result.outcome == diners::sim::RunOutcome::kTerminated) break;
  }

  if (dot) {
    std::cout << diners::analysis::to_dot(system);
    return 0;
  }
  if (!csv) {
    const auto dead = system.dead_processes();
    const auto dist = diners::graph::distances_to_set(
        system.topology(), std::span<const NodeId>(dead));
    const auto red = diners::analysis::red_processes(system);
    diners::util::Table t({"process", "state", "meals", "dist", "class"});
    for (NodeId p = 0; p < system.topology().num_nodes(); ++p) {
      t.add_row({static_cast<std::int64_t>(p),
                 std::string(diners::core::to_string(system.state(p))) +
                     (system.alive(p) ? "" : " (dead)"),
                 static_cast<std::int64_t>(system.meals(p)),
                 dead.empty() ? std::string("-")
                              : std::to_string(dist[p]),
                 red[p] ? std::string("red") : std::string("green")});
    }
    t.print(std::cout);
    std::cout << "total meals: " << system.total_meals()
              << "; invariant I: "
              << (diners::analysis::holds_invariant(system) ? "holds"
                                                            : "violated")
              << "; steps executed: " << done << "\n";
  }
  return 0;
}

/// Sweep mode (--trials > 0): fans independent Monte Carlo trials of the
/// configured scenario across --jobs worker threads and prints the merged
/// aggregate. The aggregate is bit-identical for a given seed regardless
/// of --jobs (see analysis/batch_runner.hpp).
int run_batch_mode(const diners::util::Flags& flags) {
  namespace analysis = diners::analysis;

  const NodeId n = flags.u32("n", 1, diners::graph::kNoNode - 1);
  const std::uint64_t seed = flags.u64("seed");

  analysis::ScenarioOptions scenario;
  scenario.topology = flags.str("topology");
  scenario.n = n;
  scenario.daemon = flags.str("daemon");
  scenario.fairness_bound = 256;  // match the single-run harness default
  scenario.corrupt = flags.flag("corrupt");
  scenario.workload = flags.str("workload");
  scenario.max_steps = flags.u64("steps");
  scenario.window_steps = flags.u64("window");
  scenario.check_every = flags.u64("check-every", 1);
  scenario.engine_kind = parse_engine(flags.str("engine"));
  const EngineJobs engine_jobs = parse_engine_jobs(flags);
  scenario.rebuild_jobs = engine_jobs.rebuild;
  scenario.step_jobs = engine_jobs.step;

  // Validate user input against a probe topology (seeded families resample
  // per trial, but the node count is seed-independent for every family).
  const auto probe = build_topology(scenario.topology, n, seed);
  try {
    scenario.diameter_override = diners::core::parse_threshold(
        flags.str("threshold"), probe.num_nodes());
    scenario.crashes = diners::fault::parse_crash_list(flags.str("crash"));
  } catch (const std::invalid_argument& err) {
    throw UsageError(err.what());
  }
  for (const auto& e : scenario.crashes) {
    if (e.process >= probe.num_nodes()) {
      throw UsageError("bad crash spec: victim " + std::to_string(e.process) +
                       " is out of range for n = " +
                       std::to_string(probe.num_nodes()));
    }
  }

  analysis::BatchOptions batch;
  batch.trials = flags.u64("trials");
  batch.master_seed = seed;
  batch.hist_hi = static_cast<double>(scenario.max_steps ? scenario.max_steps
                                                         : 1);
  const std::uint32_t jobs = flags.u32("jobs");  // 0 = hardware
  batch.jobs = jobs == 0 ? diners::util::TrialPool::hardware_jobs() : jobs;

  const auto result = analysis::run_scenario_batch(scenario, batch);

  auto fmt = [](double x) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", x);
    return std::string(buf);
  };
  diners::util::Table t({"metric", "mean", "stddev", "min", "max"});
  t.add_row({std::string("steps-to-I"), fmt(result.primary.mean()),
             fmt(result.primary.stddev()), fmt(result.primary.min()),
             fmt(result.primary.max())});
  t.add_row({std::string("meals"), fmt(result.meals.mean()),
             fmt(result.meals.stddev()), fmt(result.meals.min()),
             fmt(result.meals.max())});
  if (scenario.window_steps > 0) {
    t.add_row({std::string("starved"), fmt(result.starved.mean()),
               fmt(result.starved.stddev()), fmt(result.starved.min()),
               fmt(result.starved.max())});
  }
  t.print(std::cout);
  std::cout << "trials: " << result.trials << "; converged: "
            << result.converged << "; jobs: " << batch.jobs;
  if (scenario.window_steps > 0) {
    std::cout << "; max locality radius: " << result.max_locality_radius;
  }
  std::cout << "\nwall: " << fmt(result.wall_seconds) << " s ("
            << fmt(result.trials_per_sec) << " trials/sec)\n";

  // Machine-readable report (diners_bench's campaign rows parse this).
  if (const std::string json_path = flags.str("json"); !json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "error: cannot write " << json_path << "\n";
      return 1;
    }
    diners::util::JsonWriter w(out);
    w.begin_object()
        .field("schema", "diners-sim-batch/v1")
        .key("scenario")
        .begin_object()
        .field("topology", scenario.topology)
        .field("n", static_cast<std::uint64_t>(scenario.n))
        .field("daemon", scenario.daemon)
        .field("engine", flags.str("engine"))
        .field("corrupt", scenario.corrupt)
        .field("workload", scenario.workload)
        .field("max_steps", scenario.max_steps)
        .field("window_steps", scenario.window_steps)
        .field("check_every", scenario.check_every)
        .field("rebuild_jobs", scenario.rebuild_jobs)
        .field("step_jobs", scenario.step_jobs)
        .field("seed", seed)
        .end_object();
    const auto stats_object = [&w](std::string_view name,
                                   const analysis::Accumulator& s) {
      w.key(name)
          .begin_object()
          .field("mean", s.mean())
          .field("stddev", s.stddev())
          .field("min", s.min())
          .field("max", s.max())
          .end_object();
    };
    stats_object("steps_to_i", result.primary);
    stats_object("meals", result.meals);
    if (scenario.window_steps > 0) {
      stats_object("starved", result.starved);
      w.field("max_locality_radius",
              static_cast<std::uint64_t>(result.max_locality_radius));
    }
    w.field("trials", result.trials)
        .field("converged", result.converged)
        .field("jobs", static_cast<std::uint64_t>(batch.jobs))
        .field("wall_seconds", result.wall_seconds)
        .field("trials_per_sec", result.trials_per_sec)
        .field("max_rss_bytes", peak_rss_bytes());
    w.finish();
  }
  return 0;
}

/// Replays a diners_mc counterexample file against the genuine program and
/// reports whether the recorded run is legal, whether its cycle closes, and
/// whether I holds at the end. Exit 0 iff every recorded action was enabled
/// when executed.
int run_replay(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "error: cannot read " << path << "\n";
    return 1;
  }
  auto loaded = diners::verify::read_counterexample(in);
  DinersSystem system(std::move(loaded.graph), loaded.config);
  diners::core::restore(system, loaded.cex.start);
  const auto result =
      diners::verify::replay_counterexample(system, loaded.cex);

  std::cout << "replaying " << loaded.cex.property << " counterexample: "
            << loaded.cex.detail << "\n"
            << loaded.cex.events.size() << " events (stem "
            << loaded.cex.stem_length << ", cycle "
            << loaded.cex.events.size() - loaded.cex.stem_length << ")\n";
  if (!result.legal) {
    std::cout << "ILLEGAL at event " << result.failed_index << ": "
              << result.reason << "\n";
    return 1;
  }
  std::cout << "replay legal";
  if (loaded.cex.stem_length < loaded.cex.events.size()) {
    std::cout << "; cycle "
              << (result.cycle_closes ? "closes (run repeats forever)"
                                      : "does NOT close");
  }
  std::cout << "; invariant I at end: "
            << (result.invariant_at_end ? "holds" : "violated") << "\n";
  return 0;
}

template <typename System>
int run_baseline(const diners::util::Flags& flags) {
  const NodeId n = flags.u32("n", 1, diners::graph::kNoNode - 1);
  const std::uint64_t seed = flags.u64("seed");
  System system(build_topology(flags.str("topology"), n, seed));
  diners::sim::Engine engine(
      system, diners::sim::make_daemon(flags.str("daemon"), seed), 256);
  engine.run(flags.u64("steps"));
  diners::util::Table t({"process", "state", "meals"});
  for (NodeId p = 0; p < system.topology().num_nodes(); ++p) {
    t.add_row({static_cast<std::int64_t>(p),
               std::string(diners::core::to_string(system.state(p))),
               static_cast<std::int64_t>(system.meals(p))});
  }
  t.print(std::cout);
  std::cout << "total meals: " << system.total_meals() << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  diners::util::Flags flags;
  flags.define("algorithm", "nesterenko-arora",
               "nesterenko-arora | chandy-misra | ordered-resource")
      .define("topology", "ring",
              "ring|path|star|complete|grid|torus|tree|wheel|barbell|gnp|figure2")
      .define("n", "16", "system size")
      .define("steps", "20000", "scheduler steps to run")
      .define("daemon", "round-robin",
              "round-robin|random|adversarial-age|biased")
      .define("seed", "1", "rng seed")
      .define("threshold", "paper",
              "cycle threshold: paper (=diameter) | sound (=n-1) | <int>")
      .define("workload", "saturation", "saturation|random-toggle|none")
      .define("crash", "", "comma list of STEP:VICTIM[:MALICE]")
      .define("corrupt", "false", "start from a corrupted state")
      .define("no-threshold", "false", "ablation A1: disable leave")
      .define("no-cycle-breaking", "false", "ablation A2: disable fixdepth")
      .define("csv", "false", "emit CSV time series instead of a table")
      .define("dot", "false", "emit the final priority graph as Graphviz DOT")
      .define("sample", "500", "CSV sampling interval in steps")
      .define("trials", "0", "sweep mode: run this many independent trials")
      .define("jobs", "1", "sweep worker threads (0 = hardware)")
      .define("window", "0", "sweep starvation window steps (0 = none)")
      .define("engine", "object",
              "engine implementation: object | flat (SoA substrate)")
      .define("rebuild-jobs", "1",
              "flat-engine full-rebuild shards (results identical at any "
              "value)")
      .define("step-jobs", "1",
              "flat-engine wide in-step refresh shards (results identical "
              "at any value)")
      .define("engine-jobs", "1",
              "DEPRECATED alias for --rebuild-jobs")
      .define("json", "",
              "sweep mode: also write a diners-sim-batch/v1 JSON report "
              "to this path")
      .define("check-every", "16",
              "sweep invariant-check interval in steps (raise for large n)")
      .define("replay", "",
              "replay a diners_mc counterexample file and exit");
  if (!flags.parse(argc, argv)) return kUsageError;

  try {
    if (!flags.str("replay").empty()) return run_replay(flags.str("replay"));
    const std::string algorithm = flags.str("algorithm");
    if (flags.u64("trials") > 0) {
      if (algorithm != "nesterenko-arora") {
        std::cerr << "error: --trials sweep mode supports only the "
                     "nesterenko-arora algorithm\n";
        return kUsageError;
      }
      return run_batch_mode(flags);
    }
    if (algorithm == "nesterenko-arora") return run_diners(flags);
    if (algorithm == "chandy-misra") {
      return run_baseline<diners::algorithms::ChandyMisraSystem>(flags);
    }
    if (algorithm == "ordered-resource") {
      return run_baseline<diners::algorithms::OrderedResourceSystem>(flags);
    }
    std::cerr << "unknown algorithm: " << algorithm << "\n";
    return 1;
  } catch (const UsageError& err) {
    std::cerr << "error: " << err.what() << "\n"
              << "run with --help for usage\n";
    return kUsageError;
  } catch (const diners::util::FlagError& err) {
    std::cerr << "error: " << err.what() << "\n"
              << "run with --help for usage\n";
    return kUsageError;
  } catch (const std::exception& err) {
    std::cerr << "error: " << err.what() << "\n";
    return 1;
  }
}
